"""Time-stepped day simulation over the EBSN platform.

The paper's setting is daily planning: plans are published in the morning,
changes arrive during the day, and each event eventually starts (locking
its roster) and finishes.  :class:`DaySimulation` animates that lifecycle:

* the clock advances through the planning horizon,
* operations drawn from an :class:`OperationStream` arrive at random times
  and are applied **only if their event has not started yet** (you cannot
  shrink the capacity of a running event),
* when an event starts, its roster is frozen and recorded as *held* (it met
  its lower bound — the platform's plans guarantee that) with the utility
  it realises,
* the simulation ends with a day report: utility promised vs realised,
  operations applied vs rejected, and cumulative negative impact.

This is the system-level regression the unit tests cannot express: over an
entire simulated day, *every* roster the platform freezes is viable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.gepc.base import GEPCSolver
from repro.core.iep.operations import (
    AtomicOperation,
    BudgetChange,
    UtilityChange,
)
from repro.core.model import Instance
from repro.platform.service import EBSNPlatform
from repro.platform.stream import OperationStream


@dataclass
class HeldEvent:
    """A frozen roster: the event ran with these attendees."""

    event: int
    start: float
    attendees: tuple[int, ...]
    realised_utility: float


@dataclass
class DayReport:
    """End-of-day summary."""

    promised_utility: float
    realised_utility: float
    held_events: list[HeldEvent] = field(default_factory=list)
    cancelled_events: list[int] = field(default_factory=list)
    operations_applied: int = 0
    operations_rejected: int = 0
    total_dif: int = 0

    @property
    def events_held(self) -> int:
        return len(self.held_events)


class DaySimulation:
    """Animate one planning day over a platform instance."""

    def __init__(
        self,
        instance: Instance,
        solver: GEPCSolver | None = None,
        n_operations: int = 20,
        seed: int = 0,
    ) -> None:
        self._platform = EBSNPlatform(instance, solver=solver)
        self._n_operations = n_operations
        self._seed = seed

    def run(self) -> DayReport:
        platform = self._platform
        promised = platform.publish_plans()
        stream = OperationStream(seed=self._seed)
        rng = random.Random(self._seed)

        horizon = max(
            (event.end for event in platform.instance.events), default=24.0
        )
        arrivals = sorted(
            rng.uniform(0.0, horizon) for _ in range(self._n_operations)
        )

        started: set[int] = set()
        report = DayReport(promised_utility=promised, realised_utility=0.0)

        clock = 0.0
        for arrival in arrivals + [horizon + 1.0]:
            # Freeze every event that starts before the next arrival.
            self._freeze_started(platform, started, clock, arrival, report)
            clock = arrival
            if arrival > horizon:
                break
            operation = self._draw(stream, platform)
            if operation is None:
                continue
            if self._touches_started(operation, started):
                report.operations_rejected += 1
                continue
            entry = platform.submit(operation)
            report.operations_applied += 1
            report.total_dif += entry.dif

        # Events that never ran (zero attendance at start time).
        report.cancelled_events = [
            event
            for event in range(platform.instance.n_events)
            if event not in {held.event for held in report.held_events}
        ]
        report.realised_utility = sum(
            held.realised_utility for held in report.held_events
        )
        return report

    # ------------------------------------------------------------------ #

    @staticmethod
    def _freeze_started(
        platform: EBSNPlatform,
        started: set[int],
        from_time: float,
        to_time: float,
        report: DayReport,
    ) -> None:
        instance = platform.instance
        for event in range(instance.n_events):
            if event in started:
                continue
            start = instance.events[event].start
            if from_time <= start < to_time:
                started.add(event)
                attendees = tuple(platform.plan.attendees(event))
                if attendees:
                    if len(attendees) < instance.events[event].lower:
                        raise RuntimeError(
                            f"platform froze a non-viable roster for event "
                            f"{event}: {len(attendees)} < "
                            f"{instance.events[event].lower}"
                        )
                    report.held_events.append(
                        HeldEvent(
                            event=event,
                            start=start,
                            attendees=attendees,
                            realised_utility=float(
                                sum(
                                    instance.utility[user, event]
                                    for user in attendees
                                )
                            ),
                        )
                    )

    def _draw(
        self, stream: OperationStream, platform: EBSNPlatform
    ) -> AtomicOperation | None:
        try:
            return next(
                iter(stream.mixed(platform.instance, platform.plan, 1))
            )
        except StopIteration:  # pragma: no cover - mixed always yields
            return None

    @staticmethod
    def _touches_started(
        operation: AtomicOperation, started: set[int]
    ) -> bool:
        """Whether the operation targets an event that already started.

        User-side operations (budget, utility) are rejected only if they
        target a started event; pure user changes always apply.
        """
        if isinstance(operation, BudgetChange):
            return False
        if isinstance(operation, UtilityChange):
            return operation.event in started
        event = getattr(operation, "event", None)
        return event is not None and event in started
