"""Conflict structure over a set of event intervals.

The solvers need four views of the conflict relation:

* a pairwise predicate (``conflicts``) for incremental checks,
* a precomputed adjacency structure (``conflict_graph``) for the hot loops,
* a dense boolean matrix (``conflict_matrix``) for the vectorized plan
  kernel (``GlobalPlan.feasible_mask`` masks whole candidate rows at once),
* summary statistics (``conflict_ratio``, used by the dataset generator to
  hit the paper's Table IV target of 0.25, and ``max_clique_upper_bound``,
  the ``maxCF`` quantity in the paper's complexity analysis).

``patched_conflict_graph``/``patched_conflict_matrix`` rebuild only the one
row/column an IEP ``TimeChange`` touches, sharing every untouched adjacency
set with the source structure (read-only by convention).
"""

from __future__ import annotations

from collections.abc import Sequence

import networkx as nx
import numpy as np

from repro.timeline.interval import Interval


def conflicts(a: Interval, b: Interval) -> bool:
    """Whether two event intervals conflict under the paper's rule."""
    return a.conflicts_with(b)


def conflict_graph(intervals: Sequence[Interval]) -> list[set[int]]:
    """Adjacency sets of the conflict graph over ``intervals``.

    ``result[j]`` is the set of event indices that conflict with event ``j``
    (never containing ``j`` itself).  Built with a sweep over start-sorted
    intervals, O(m log m + m * k) for k conflicts per event.
    """
    order = sorted(range(len(intervals)), key=lambda j: intervals[j].start)
    adjacency: list[set[int]] = [set() for _ in intervals]
    for pos, j in enumerate(order):
        for k in order[pos + 1 :]:
            # Once a later event starts strictly after j ends, no further
            # event in start order can conflict with j.
            if intervals[k].start > intervals[j].end:
                break
            adjacency[j].add(k)
            adjacency[k].add(j)
    return adjacency


def conflict_matrix(intervals: Sequence[Interval]) -> np.ndarray:
    """Dense symmetric boolean conflict matrix over ``intervals``.

    ``result[j, k]`` is ``True`` when events ``j`` and ``k`` (``j != k``)
    conflict under the paper's rule (the earlier must end *strictly* before
    the later starts).  Built with one vectorized comparison, O(m^2) but
    branch-free; the diagonal is always ``False``.
    """
    m = len(intervals)
    if m == 0:
        return np.zeros((0, 0), dtype=bool)
    starts = np.array([interval.start for interval in intervals])
    ends = np.array([interval.end for interval in intervals])
    # a conflicts b  <=>  not (a ends before b starts or b ends before a
    # starts); this is symmetric, so one broadcast comparison suffices.
    matrix = ~((ends[:, None] < starts[None, :]) | (ends[None, :] < starts[:, None]))
    np.fill_diagonal(matrix, False)
    return matrix


def conflict_row(intervals: Sequence[Interval], event: int) -> np.ndarray:
    """One event's boolean conflict row against all of ``intervals``."""
    starts = np.array([interval.start for interval in intervals])
    ends = np.array([interval.end for interval in intervals])
    row = ~((ends[event] < starts) | (ends < starts[event]))
    row[event] = False
    return row


def patched_conflict_graph(
    adjacency: list[set[int]],
    intervals: Sequence[Interval],
    event: int,
) -> list[set[int]]:
    """``adjacency`` after ``event``'s interval changed, sharing structure.

    ``intervals`` must reflect the *new* state.  Only the changed event's
    set and the sets of events entering/leaving its neighbourhood are fresh
    objects; all other rows are the same (never-mutated) set instances.
    """
    new_neighbours = set(np.flatnonzero(conflict_row(intervals, event)).tolist())
    old_neighbours = adjacency[event]
    patched = list(adjacency)
    for k in old_neighbours - new_neighbours:
        patched[k] = adjacency[k] - {event}
    for k in new_neighbours - old_neighbours:
        patched[k] = adjacency[k] | {event}
    patched[event] = new_neighbours
    return patched


def patched_conflict_matrix(
    matrix: np.ndarray,
    intervals: Sequence[Interval],
    event: int,
) -> np.ndarray:
    """A copy of ``matrix`` with ``event``'s row/column recomputed."""
    row = conflict_row(intervals, event)
    patched = matrix.copy()
    patched[event, :] = row
    patched[:, event] = row
    return patched


def conflict_ratio(intervals: Sequence[Interval]) -> float:
    """Fraction of events that conflict with at least one other event.

    This matches the paper's Table IV "conflict ratio" column (the proportion
    of events that have time conflicts).
    """
    if not intervals:
        return 0.0
    adjacency = conflict_graph(intervals)
    conflicted = sum(1 for neighbours in adjacency if neighbours)
    return conflicted / len(intervals)


def max_clique_upper_bound(intervals: Sequence[Interval]) -> int:
    """The paper's ``maxCF``: the largest set of mutually conflicting events.

    For intervals under the touching-conflicts rule this equals the maximum
    number of intervals sharing a common instant, computable exactly with a
    sweep line (interval graphs are perfect, so this is the clique number,
    not just a bound).
    """
    if not intervals:
        return 0
    points: list[tuple[float, int]] = []
    for interval in intervals:
        # Closed endpoints: starts sort before ends at equal time so that
        # touching intervals count as overlapping.
        points.append((interval.start, 0))
        points.append((interval.end, 1))
    points.sort()
    depth = best = 0
    for _, kind in points:
        if kind == 0:
            depth += 1
            best = max(best, depth)
        else:
            depth -= 1
    return best


def as_networkx(intervals: Sequence[Interval]) -> nx.Graph:
    """The conflict graph as a networkx graph (used in tests/diagnostics)."""
    graph = nx.Graph()
    graph.add_nodes_from(range(len(intervals)))
    for j, neighbours in enumerate(conflict_graph(intervals)):
        graph.add_edges_from((j, k) for k in neighbours if k > j)
    return graph
