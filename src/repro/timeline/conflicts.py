"""Conflict structure over a set of event intervals.

The solvers need three views of the conflict relation:

* a pairwise predicate (``conflicts``) for incremental checks,
* a precomputed adjacency structure (``conflict_graph``) for the hot loops,
* summary statistics (``conflict_ratio``, used by the dataset generator to
  hit the paper's Table IV target of 0.25, and ``max_clique_upper_bound``,
  the ``maxCF`` quantity in the paper's complexity analysis).
"""

from __future__ import annotations

from collections.abc import Sequence

import networkx as nx

from repro.timeline.interval import Interval


def conflicts(a: Interval, b: Interval) -> bool:
    """Whether two event intervals conflict under the paper's rule."""
    return a.conflicts_with(b)


def conflict_graph(intervals: Sequence[Interval]) -> list[set[int]]:
    """Adjacency sets of the conflict graph over ``intervals``.

    ``result[j]`` is the set of event indices that conflict with event ``j``
    (never containing ``j`` itself).  Built with a sweep over start-sorted
    intervals, O(m log m + m * k) for k conflicts per event.
    """
    order = sorted(range(len(intervals)), key=lambda j: intervals[j].start)
    adjacency: list[set[int]] = [set() for _ in intervals]
    for pos, j in enumerate(order):
        for k in order[pos + 1 :]:
            # Once a later event starts strictly after j ends, no further
            # event in start order can conflict with j.
            if intervals[k].start > intervals[j].end:
                break
            adjacency[j].add(k)
            adjacency[k].add(j)
    return adjacency


def conflict_ratio(intervals: Sequence[Interval]) -> float:
    """Fraction of events that conflict with at least one other event.

    This matches the paper's Table IV "conflict ratio" column (the proportion
    of events that have time conflicts).
    """
    if not intervals:
        return 0.0
    adjacency = conflict_graph(intervals)
    conflicted = sum(1 for neighbours in adjacency if neighbours)
    return conflicted / len(intervals)


def max_clique_upper_bound(intervals: Sequence[Interval]) -> int:
    """The paper's ``maxCF``: the largest set of mutually conflicting events.

    For intervals under the touching-conflicts rule this equals the maximum
    number of intervals sharing a common instant, computable exactly with a
    sweep line (interval graphs are perfect, so this is the clique number,
    not just a bound).
    """
    if not intervals:
        return 0
    points: list[tuple[float, int]] = []
    for interval in intervals:
        # Closed endpoints: starts sort before ends at equal time so that
        # touching intervals count as overlapping.
        points.append((interval.start, 0))
        points.append((interval.end, 1))
    points.sort()
    depth = best = 0
    for _, kind in points:
        if kind == 0:
            depth += 1
            best = max(best, depth)
        else:
            depth -= 1
    return best


def as_networkx(intervals: Sequence[Interval]) -> nx.Graph:
    """The conflict graph as a networkx graph (used in tests/diagnostics)."""
    graph = nx.Graph()
    graph.add_nodes_from(range(len(intervals)))
    for j, neighbours in enumerate(conflict_graph(intervals)):
        graph.add_edges_from((j, k) for k in neighbours if k > j)
    return graph
