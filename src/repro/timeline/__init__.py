"""Time substrate: intervals, the paper's conflict rule, conflict graphs."""

from repro.timeline.conflicts import (
    conflict_graph,
    conflict_ratio,
    conflicts,
    max_clique_upper_bound,
)
from repro.timeline.interval import Interval

__all__ = [
    "Interval",
    "conflicts",
    "conflict_graph",
    "conflict_ratio",
    "max_clique_upper_bound",
]
