"""Time intervals with the paper's strict sequencing rule.

Section II of the paper defines a conflict between two events ``e_k`` (earlier
start) and ``e_h`` as anything other than ``t_k^t < t_h^s``: the earlier event
must *strictly* end before the later one starts, otherwise there is "no time
to go" between them (the paper's Example 1 treats back-to-back events ``e_2``
4:00-6:00 and ``e_4`` 6:00-8:00 as conflicting).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True, order=True)
class Interval:
    """A half-day event slot ``[start, end]`` in abstract time units.

    ``start`` must be strictly less than ``end``; zero-length events are not
    meaningful under the paper's conflict rule.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if not self.start < self.end:
            raise ValueError(
                f"interval start must precede end, got [{self.start}, {self.end}]"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    def conflicts_with(self, other: "Interval") -> bool:
        """Paper conflict rule: the earlier event must end strictly before the
        later one starts (touching endpoints conflict)."""
        first, second = (self, other) if self.start <= other.start else (other, self)
        return not first.end < second.start

    def shifted(self, delta: float) -> "Interval":
        """This interval moved by ``delta`` time units."""
        return Interval(self.start + delta, self.end + delta)

    def contains_time(self, t: float) -> bool:
        """Whether instant ``t`` falls inside this interval (inclusive)."""
        return self.start <= t <= self.end
