"""Immutable 2-D points.

The paper places users and events on a 2-D grid (Fig. 1) and measures travel
cost by Euclidean distance.  ``Point`` is deliberately tiny: a frozen pair of
floats with vector arithmetic helpers used by the dataset generators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Point:
    """A point on the planning plane.

    >>> Point(0.0, 3.0).distance_to(Point(4.0, 0.0))
    5.0
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance from this point to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """The point halfway between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: float, dy: float) -> "Point":
        """A copy of this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """This point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    @staticmethod
    def origin() -> "Point":
        """The origin ``(0, 0)``."""
        return Point(0.0, 0.0)
