"""Planar geometry substrate: points, Euclidean metric, distance matrices."""

from repro.geo.point import Point
from repro.geo.distance import DistanceMatrix, euclidean

__all__ = ["Point", "euclidean", "DistanceMatrix"]
