"""Planar geometry substrate: points, Euclidean metric, distance matrices."""

from repro.geo.distance import DistanceMatrix, euclidean
from repro.geo.point import Point

__all__ = ["Point", "euclidean", "DistanceMatrix"]
