"""A travel metric backed by explicit distance matrices.

The paper's Theorem-2 reduction declares distances directly ("let
``d(u_i, e_j) = p_ij / 2``") — values that are generally *not* realisable
as Euclidean positions in the plane.  :class:`MatrixMetric` makes such
instances constructible anyway: points are index codes (users at
``Point(i, USER_SIDE)``, events at ``Point(j, EVENT_SIDE)``) and distances
come from caller-supplied matrices.

Only the distances the planning stack actually uses are required:
user-to-event and event-to-event (users never travel to other users).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.geo.point import Point

USER_SIDE = 0.0
EVENT_SIDE = 1.0


def user_point(index: int) -> Point:
    """The coded location of user ``index`` under a matrix metric."""
    return Point(float(index), USER_SIDE)


def event_point(index: int) -> Point:
    """The coded location of event ``index`` under a matrix metric."""
    return Point(float(index), EVENT_SIDE)


class MatrixMetric:
    """Distances looked up from matrices instead of computed from geometry."""

    name = "matrix"

    def __init__(
        self, user_event: np.ndarray, event_event: np.ndarray
    ) -> None:
        self._user_event = np.asarray(user_event, dtype=float)
        self._event_event = np.asarray(event_event, dtype=float)
        m = self._user_event.shape[1]
        if self._event_event.shape != (m, m):
            raise ValueError(
                "event-event matrix must be square and match the "
                "user-event column count"
            )
        if (self._user_event < 0).any() or (self._event_event < 0).any():
            raise ValueError("distances must be non-negative")

    # The planning stack reaches distances through these three hooks.

    def distance(self, a: Point, b: Point) -> float:
        side_a, side_b = a.y, b.y
        if side_a == USER_SIDE and side_b == EVENT_SIDE:
            return float(self._user_event[int(a.x), int(b.x)])
        if side_a == EVENT_SIDE and side_b == USER_SIDE:
            return float(self._user_event[int(b.x), int(a.x)])
        if side_a == EVENT_SIDE and side_b == EVENT_SIDE:
            return float(self._event_event[int(a.x), int(b.x)])
        raise ValueError("matrix metric has no user-to-user distances")

    def pairwise(self, points: Sequence[Point]) -> np.ndarray:
        indices = [int(p.x) for p in points]
        if any(p.y != EVENT_SIDE for p in points):
            raise ValueError("pairwise is only defined over event points")
        return self._event_event[np.ix_(indices, indices)].copy()

    def cross(
        self, left: Sequence[Point], right: Sequence[Point]
    ) -> np.ndarray:
        if not left or not right:
            return np.zeros((len(left), len(right)))
        rows = [int(p.x) for p in left]
        cols = [int(p.x) for p in right]
        if all(p.y == USER_SIDE for p in left) and all(
            p.y == EVENT_SIDE for p in right
        ):
            return self._user_event[np.ix_(rows, cols)].copy()
        raise ValueError(
            "cross expects user points on the left and event points on the "
            "right"
        )

    def cross_coords(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Array-coded lookup: rows of ``(index, side)`` pairs.

        Mirrors :meth:`cross` for the tiled backend's raw-coordinate
        serving path; additionally supports event-by-event blocks (the
        tiled backend builds its event-event plane through this hook).
        """
        a = np.asarray(a, dtype=float).reshape(-1, 2)
        b = np.asarray(b, dtype=float).reshape(-1, 2)
        if a.shape[0] == 0 or b.shape[0] == 0:
            return np.zeros((a.shape[0], b.shape[0]))
        rows = a[:, 0].astype(int)
        cols = b[:, 0].astype(int)
        if (a[:, 1] == USER_SIDE).all() and (b[:, 1] == EVENT_SIDE).all():
            return self._user_event[np.ix_(rows, cols)].copy()
        if (a[:, 1] == EVENT_SIDE).all() and (b[:, 1] == EVENT_SIDE).all():
            return self._event_event[np.ix_(rows, cols)].copy()
        raise ValueError(
            "cross_coords expects user rows against event rows, or event "
            "rows against event rows"
        )

    def scalar_coords(
        self, ax: float, ay: float, bx: float, by: float
    ) -> float:
        """One coded lookup — the scalar twin of :meth:`cross_coords`."""
        if ay == USER_SIDE and by == EVENT_SIDE:
            return float(self._user_event[int(ax), int(bx)])
        if ay == EVENT_SIDE and by == EVENT_SIDE:
            return float(self._event_event[int(ax), int(bx)])
        raise ValueError(
            "scalar_coords expects a user (or event) row against an "
            "event row"
        )

    def rect_lower_bound(
        self, point: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> float:
        """Matrix distances carry no geometry, so the only sound lower
        bound on the distance from ``point`` to anywhere inside the
        rectangle is zero (the spatial index then prunes nothing)."""
        return 0.0
