"""Pluggable travel metrics.

Section II notes travel costs "may consist of one, or a combination, of
distance (e.g., Euclidean, Manhattan), cost of attendance (e.g., admission
fee), and other considerations" — the paper then uses Euclidean distance.
This module provides the distance part of that generality: Euclidean
(the paper's default) and Manhattan metrics behind one small protocol, used
by :class:`repro.geo.distance.DistanceMatrix` and the cost model.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import Protocol

import numpy as np

from repro.geo.point import Point


class TravelMetric(Protocol):
    """A distance function over the planning plane."""

    name: str

    def distance(self, a: Point, b: Point) -> float:
        """Distance between two points."""
        ...

    def pairwise(self, points: Sequence[Point]) -> np.ndarray:
        """Dense symmetric distance matrix."""
        ...

    def cross(
        self, left: Sequence[Point], right: Sequence[Point]
    ) -> np.ndarray:
        """Dense ``len(left) x len(right)`` distance matrix."""
        ...

    def cross_coords(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Dense block over raw ``(k, 2)`` coordinate arrays.

        The tiled distance backend computes blocks straight from cached
        coordinate arrays; ``cross`` delegates here, so the elementwise
        operation sequence (and therefore every float result) is shared
        with the dense path bit for bit.
        """
        ...

    def rect_lower_bound(
        self, point: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        """Lower bound on the distance from ``point`` to each ``[lo, hi]``
        axis-aligned rectangle (used by the spatial pruning grid; must
        never exceed the true distance to any point inside the rect)."""
        ...

    def scalar_coords(
        self, ax: float, ay: float, bx: float, by: float
    ) -> float:
        """One distance, python-scalar fast path.

        MUST return the exact float64 ``cross_coords`` would put in the
        corresponding cell — the tiled backend serves scattered scalar
        probes through this hook (a 1x1 numpy block costs ~100x the
        arithmetic in array overhead) and its value-identity contract
        rides on the equality.  Python floats and correctly-rounded IEEE
        ops make that achievable: same operations, same order.
        """
        ...


def _coords(points: Sequence[Point]) -> np.ndarray:
    return np.array([(p.x, p.y) for p in points], dtype=float)


class EuclideanMetric:
    """Straight-line distance (the paper's choice)."""

    name = "euclidean"

    def distance(self, a: Point, b: Point) -> float:
        return a.distance_to(b)

    def pairwise(self, points: Sequence[Point]) -> np.ndarray:
        if not points:
            return np.zeros((0, 0))
        coords = _coords(points)
        diff = coords[:, None, :] - coords[None, :, :]
        return np.sqrt((diff * diff).sum(axis=2))

    def cross(
        self, left: Sequence[Point], right: Sequence[Point]
    ) -> np.ndarray:
        if not left or not right:
            return np.zeros((len(left), len(right)))
        return self.cross_coords(_coords(left), _coords(right))

    def cross_coords(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        diff = a[:, None, :] - b[None, :, :]
        return np.sqrt((diff * diff).sum(axis=2))

    def rect_lower_bound(
        self, point: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        # Distance to the nearest point of each rectangle: clamp the
        # query into the rect, then measure.  Exact (not just a bound)
        # for axis-aligned rects under the L2 metric.
        nearest = np.clip(point[None, :], lo, hi)
        diff = nearest - point[None, :]
        return np.sqrt((diff * diff).sum(axis=1))

    def scalar_coords(
        self, ax: float, ay: float, bx: float, by: float
    ) -> float:
        # Bit-identical to one cross_coords cell: subtract, multiply,
        # add (numpy sums a length-2 axis as one add, index order), sqrt
        # — all correctly-rounded IEEE doubles in the same order.
        dx = ax - bx
        dy = ay - by
        return math.sqrt(dx * dx + dy * dy)


class ManhattanMetric:
    """City-block distance (grid-street travel)."""

    name = "manhattan"

    def distance(self, a: Point, b: Point) -> float:
        return abs(a.x - b.x) + abs(a.y - b.y)

    def pairwise(self, points: Sequence[Point]) -> np.ndarray:
        if not points:
            return np.zeros((0, 0))
        coords = _coords(points)
        diff = np.abs(coords[:, None, :] - coords[None, :, :])
        return diff.sum(axis=2)

    def cross(
        self, left: Sequence[Point], right: Sequence[Point]
    ) -> np.ndarray:
        if not left or not right:
            return np.zeros((len(left), len(right)))
        return self.cross_coords(_coords(left), _coords(right))

    def cross_coords(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        diff = np.abs(a[:, None, :] - b[None, :, :])
        return diff.sum(axis=2)

    def rect_lower_bound(
        self, point: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        nearest = np.clip(point[None, :], lo, hi)
        return np.abs(nearest - point[None, :]).sum(axis=1)

    def scalar_coords(
        self, ax: float, ay: float, bx: float, by: float
    ) -> float:
        # Same IEEE ops in the same order as one cross_coords cell.
        return abs(ax - bx) + abs(ay - by)


EUCLIDEAN = EuclideanMetric()
MANHATTAN = ManhattanMetric()

_BY_NAME = {metric.name: metric for metric in (EUCLIDEAN, MANHATTAN)}


def metric_by_name(name: str) -> TravelMetric:
    """Look a metric up by its ``name`` (``"euclidean"``/``"manhattan"``)."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown travel metric {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None
