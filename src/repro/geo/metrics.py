"""Pluggable travel metrics.

Section II notes travel costs "may consist of one, or a combination, of
distance (e.g., Euclidean, Manhattan), cost of attendance (e.g., admission
fee), and other considerations" — the paper then uses Euclidean distance.
This module provides the distance part of that generality: Euclidean
(the paper's default) and Manhattan metrics behind one small protocol, used
by :class:`repro.geo.distance.DistanceMatrix` and the cost model.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol

import numpy as np

from repro.geo.point import Point


class TravelMetric(Protocol):
    """A distance function over the planning plane."""

    name: str

    def distance(self, a: Point, b: Point) -> float:
        """Distance between two points."""
        ...

    def pairwise(self, points: Sequence[Point]) -> np.ndarray:
        """Dense symmetric distance matrix."""
        ...

    def cross(
        self, left: Sequence[Point], right: Sequence[Point]
    ) -> np.ndarray:
        """Dense ``len(left) x len(right)`` distance matrix."""
        ...


def _coords(points: Sequence[Point]) -> np.ndarray:
    return np.array([(p.x, p.y) for p in points], dtype=float)


class EuclideanMetric:
    """Straight-line distance (the paper's choice)."""

    name = "euclidean"

    def distance(self, a: Point, b: Point) -> float:
        return a.distance_to(b)

    def pairwise(self, points: Sequence[Point]) -> np.ndarray:
        if not points:
            return np.zeros((0, 0))
        coords = _coords(points)
        diff = coords[:, None, :] - coords[None, :, :]
        return np.sqrt((diff * diff).sum(axis=2))

    def cross(
        self, left: Sequence[Point], right: Sequence[Point]
    ) -> np.ndarray:
        if not left or not right:
            return np.zeros((len(left), len(right)))
        diff = _coords(left)[:, None, :] - _coords(right)[None, :, :]
        return np.sqrt((diff * diff).sum(axis=2))


class ManhattanMetric:
    """City-block distance (grid-street travel)."""

    name = "manhattan"

    def distance(self, a: Point, b: Point) -> float:
        return abs(a.x - b.x) + abs(a.y - b.y)

    def pairwise(self, points: Sequence[Point]) -> np.ndarray:
        if not points:
            return np.zeros((0, 0))
        coords = _coords(points)
        diff = np.abs(coords[:, None, :] - coords[None, :, :])
        return diff.sum(axis=2)

    def cross(
        self, left: Sequence[Point], right: Sequence[Point]
    ) -> np.ndarray:
        if not left or not right:
            return np.zeros((len(left), len(right)))
        diff = np.abs(_coords(left)[:, None, :] - _coords(right)[None, :, :])
        return diff.sum(axis=2)


EUCLIDEAN = EuclideanMetric()
MANHATTAN = ManhattanMetric()

_BY_NAME = {metric.name: metric for metric in (EUCLIDEAN, MANHATTAN)}


def metric_by_name(name: str) -> TravelMetric:
    """Look a metric up by its ``name`` (``"euclidean"``/``"manhattan"``)."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown travel metric {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None
