"""Distance computations over collections of points.

The planning algorithms repeatedly ask for user-to-event and event-to-event
distances.  ``DistanceMatrix`` precomputes both blocks with numpy so that the
hot loops in the solvers are O(1) lookups instead of repeated ``math.hypot``
calls.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.geo.point import Point


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two points (the paper's travel metric)."""
    return a.distance_to(b)


def pairwise_distances(points: Sequence[Point]) -> np.ndarray:
    """Dense symmetric matrix of Euclidean distances between ``points``."""
    coords = np.array([(p.x, p.y) for p in points], dtype=float)
    if coords.size == 0:
        return np.zeros((0, 0))
    diff = coords[:, None, :] - coords[None, :, :]
    return np.sqrt((diff * diff).sum(axis=2))


def cross_distances(
    left: Sequence[Point], right: Sequence[Point]
) -> np.ndarray:
    """Dense ``len(left) x len(right)`` matrix of Euclidean distances."""
    if not left or not right:
        return np.zeros((len(left), len(right)))
    a = np.array([(p.x, p.y) for p in left], dtype=float)
    b = np.array([(p.x, p.y) for p in right], dtype=float)
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt((diff * diff).sum(axis=2))


class DistanceMatrix:
    """Cached user-to-event and event-to-event distances.

    Parameters
    ----------
    user_locations:
        One location per user, indexed by user id.
    event_locations:
        One location per event, indexed by event id.
    metric:
        The travel metric (defaults to Euclidean, the paper's choice).
    """

    def __init__(
        self,
        user_locations: Sequence[Point],
        event_locations: Sequence[Point],
        metric=None,
    ) -> None:
        from repro.geo.metrics import EUCLIDEAN

        self._metric = metric or EUCLIDEAN
        self._user_event = self._metric.cross(user_locations, event_locations)
        self._event_event = self._metric.pairwise(event_locations)

    @property
    def n_users(self) -> int:
        return self._user_event.shape[0]

    @property
    def n_events(self) -> int:
        return self._user_event.shape[1]

    @property
    def user_event_matrix(self) -> np.ndarray:
        """The raw ``n x m`` user-to-event block (treat as read-only)."""
        return self._user_event

    @property
    def event_event_matrix(self) -> np.ndarray:
        """The raw ``m x m`` event-to-event block (treat as read-only)."""
        return self._event_event

    def user_event(self, user: int, event: int) -> float:
        """Distance from ``user``'s home to ``event``'s venue."""
        return float(self._user_event[user, event])

    def event_event(self, first: int, second: int) -> float:
        """Distance between two event venues."""
        return float(self._event_event[first, second])

    def user_event_row(self, user: int) -> np.ndarray:
        """All event distances for one user (read-only).

        A fresh non-writeable view is created per call, so freezing it can
        never leave the shared backing matrix (or a view another caller
        holds) read-only.
        """
        row = self._user_event[user].view()
        row.flags.writeable = False
        return row

    def user_event_rows(
        self, users: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Distance rows for a batch of users (fresh float64 block).

        The backend-portable bulk accessor: dense gathers with one fancy
        index; the tiled backend assembles the same block from cached
        tiles.  Callers iterating very large user sets should chunk so the
        output block stays bounded.
        """
        ids = np.asarray(users, dtype=np.intp).reshape(-1)
        return self._user_event[ids]

    @classmethod
    def from_matrices(
        cls,
        user_event: np.ndarray,
        event_event: np.ndarray,
        metric=None,
    ) -> "DistanceMatrix":
        """Wrap already-computed blocks without re-running the metric.

        The zero-copy shard path builds workers' distance caches this way:
        the blocks are shared-memory attachments of the parent's matrices,
        so the values are bit-identical to the parent's by construction.
        The blocks are adopted as-is (possibly read-only views); callers
        that need to patch must :meth:`copy` first — exactly the contract
        the ``with_*`` cache-preserving paths already follow.
        """
        from repro.geo.metrics import EUCLIDEAN

        if user_event.shape[1] != event_event.shape[0] or (
            event_event.shape[0] != event_event.shape[1]
        ):
            raise ValueError(
                f"inconsistent blocks: user-event {user_event.shape} vs "
                f"event-event {event_event.shape}"
            )
        matrix = object.__new__(cls)
        matrix._metric = metric or EUCLIDEAN
        matrix._user_event = user_event
        matrix._event_event = event_event
        return matrix

    def copy(self) -> "DistanceMatrix":
        """An independent deep copy (used before in-place patching)."""
        clone = object.__new__(DistanceMatrix)
        clone._metric = self._metric
        clone._user_event = self._user_event.copy()
        clone._event_event = self._event_event.copy()
        return clone

    def submatrix(
        self,
        user_ids: Sequence[int] | np.ndarray,
        event_ids: Sequence[int] | np.ndarray,
    ) -> "DistanceMatrix":
        """The cached distances restricted to a subset of users and events.

        Used by ``Instance.subinstance`` when a shard is cut out of a
        warmed instance: subsetting copies the already-computed values
        (bit-exact with a from-scratch rebuild over the same locations)
        instead of re-running the metric.
        """
        # np.intp, not the builtin int: the ids index numpy planes, and
        # the builtin maps to a platform-dependent width (C long — 32-bit
        # on LLP64 platforms) while intp is always the pointer-sized
        # indexing type.
        user_ids = np.asarray(user_ids, dtype=np.intp)
        event_ids = np.asarray(event_ids, dtype=np.intp)
        clone = object.__new__(DistanceMatrix)
        clone._metric = self._metric
        clone._user_event = self._user_event[np.ix_(user_ids, event_ids)].copy()
        clone._event_event = self._event_event[
            np.ix_(event_ids, event_ids)
        ].copy()
        return clone

    def replace_event_location(
        self,
        event: int,
        location: Point,
        user_locations: Sequence[Point],
        event_locations: Sequence[Point],
    ) -> None:
        """Update cached rows after an event moves (IEP location change).

        ``user_locations``/``event_locations`` must reflect the *new* state;
        only the rows touching ``event`` are recomputed — as one vectorized
        column assignment per block, matching how the full matrices are
        built (``metric.cross``), not per-pair scalar calls.
        """
        if user_locations:
            self._user_event[:, event] = self._metric.cross(
                user_locations, [location]
            )[:, 0]
        if event_locations:
            column = self._metric.cross(event_locations, [location])[:, 0]
            column[event] = 0.0
            self._event_event[:, event] = column
            self._event_event[event, :] = column

    def replace_user_location(
        self,
        user: int,
        location: Point,
        event_locations: Sequence[Point],
    ) -> None:
        """Update the cached row after a user moves home (IEP update).

        The row is recomputed as one vectorized ``metric.cross`` call,
        matching how the full plane is built.  This keeps the plane write
        inside the geo layer — call sites never touch the raw matrix
        (lint rule RL008).
        """
        if event_locations:
            self._user_event[user, :] = self._metric.cross(
                [location], event_locations
            )[0]

    def with_event_location(
        self,
        event: int,
        location: Point,
        user_locations: Sequence[Point],
        event_locations: Sequence[Point],
    ) -> "DistanceMatrix":
        """A patched copy for one moved event (the original is untouched).

        This is the cache-preserving path of ``Instance.with_event``: the
        unchanged ``(n - 1) x (m - 1)`` bulk is a memcpy instead of an
        O(n * m) metric recompute.
        """
        clone = self.copy()
        clone.replace_event_location(
            event, location, user_locations, event_locations
        )
        return clone

    def with_appended_event(
        self,
        location: Point,
        user_locations: Sequence[Point],
        event_locations: Sequence[Point],
    ) -> "DistanceMatrix":
        """An extended copy with one more event column (IEP ``NewEvent``).

        ``event_locations`` are the *existing* venues (the new one is only
        ``location``); all previously cached distances are carried over.
        """
        clone = object.__new__(DistanceMatrix)
        clone._metric = self._metric
        if user_locations:
            new_user = self._metric.cross(user_locations, [location])
        else:
            new_user = np.zeros((0, 1))
        clone._user_event = np.hstack([self._user_event, new_user])
        if event_locations:
            column = self._metric.cross(event_locations, [location])
        else:
            column = np.zeros((0, 1))
        m = self._event_event.shape[0]
        event_event = np.zeros((m + 1, m + 1))
        event_event[:m, :m] = self._event_event
        event_event[:m, m] = column[:, 0]
        event_event[m, :m] = column[:, 0]
        clone._event_event = event_event
        return clone
