"""Distance computations over collections of points.

The planning algorithms repeatedly ask for user-to-event and event-to-event
distances.  ``DistanceMatrix`` precomputes both blocks with numpy so that the
hot loops in the solvers are O(1) lookups instead of repeated ``math.hypot``
calls.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.geo.point import Point


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two points (the paper's travel metric)."""
    return a.distance_to(b)


def pairwise_distances(points: Sequence[Point]) -> np.ndarray:
    """Dense symmetric matrix of Euclidean distances between ``points``."""
    coords = np.array([(p.x, p.y) for p in points], dtype=float)
    if coords.size == 0:
        return np.zeros((0, 0))
    diff = coords[:, None, :] - coords[None, :, :]
    return np.sqrt((diff * diff).sum(axis=2))


def cross_distances(
    left: Sequence[Point], right: Sequence[Point]
) -> np.ndarray:
    """Dense ``len(left) x len(right)`` matrix of Euclidean distances."""
    if not left or not right:
        return np.zeros((len(left), len(right)))
    a = np.array([(p.x, p.y) for p in left], dtype=float)
    b = np.array([(p.x, p.y) for p in right], dtype=float)
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt((diff * diff).sum(axis=2))


class DistanceMatrix:
    """Cached user-to-event and event-to-event distances.

    Parameters
    ----------
    user_locations:
        One location per user, indexed by user id.
    event_locations:
        One location per event, indexed by event id.
    metric:
        The travel metric (defaults to Euclidean, the paper's choice).
    """

    def __init__(
        self,
        user_locations: Sequence[Point],
        event_locations: Sequence[Point],
        metric=None,
    ) -> None:
        from repro.geo.metrics import EUCLIDEAN

        self._metric = metric or EUCLIDEAN
        self._user_event = self._metric.cross(user_locations, event_locations)
        self._event_event = self._metric.pairwise(event_locations)

    @property
    def n_users(self) -> int:
        return self._user_event.shape[0]

    @property
    def n_events(self) -> int:
        return self._user_event.shape[1]

    def user_event(self, user: int, event: int) -> float:
        """Distance from ``user``'s home to ``event``'s venue."""
        return float(self._user_event[user, event])

    def event_event(self, first: int, second: int) -> float:
        """Distance between two event venues."""
        return float(self._event_event[first, second])

    def user_event_row(self, user: int) -> np.ndarray:
        """All event distances for one user (read-only view)."""
        row = self._user_event[user]
        row.flags.writeable = False
        return row

    def replace_event_location(
        self,
        event: int,
        location: Point,
        user_locations: Sequence[Point],
        event_locations: Sequence[Point],
    ) -> None:
        """Update cached rows after an event moves (IEP location change).

        ``user_locations``/``event_locations`` must reflect the *new* state;
        only the rows touching ``event`` are recomputed.
        """
        for i, user_loc in enumerate(user_locations):
            self._user_event[i, event] = self._metric.distance(
                user_loc, location
            )
        for j, event_loc in enumerate(event_locations):
            d = (
                self._metric.distance(event_loc, location)
                if j != event
                else 0.0
            )
            self._event_event[j, event] = d
            self._event_event[event, j] = d
