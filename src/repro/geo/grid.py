"""Spatial candidate pruning: per-event candidate user sets from a grid.

In city-shaped EBSN workloads most user-event pairs are *unreachable*: a
lone round trip to the venue plus its admission fee already exceeds the
user's travel budget.  The kernel's feasibility mask rediscovers that per
pair on every pass; at million-user scale even scanning those rows is the
dominant cost.  :class:`SpatialCandidateIndex` removes them up front.

Soundness (why skipping pruned pairs is bit-identical):

Any route of user ``u`` that contains event ``e`` visits ``e`` between two
legs anchored at ``u``'s home, so under a metric travel cost it is at
least ``2 * d(u, e)`` long, and with non-negative admission fees it costs
at least ``2 * d(u, e) + fee_e``.  The solvers' budget test is
``route <= B_u + BUDGET_TOL`` — therefore a pair with
``2 * d(u, e) + fee_e > B_u + BUDGET_TOL`` can *never* pass any budget
check, whatever the rest of the plan looks like.  The index keeps exactly
the complementary set: ``candidate_users(e)`` is bit-for-bit the set of
users whose singleton round trip to ``e`` passes the same
``<= B_u + BUDGET_TOL`` comparison the kernel mask evaluates (the exact
refinement below reuses the metric's own ``cross_coords`` floats), so a
solver that iterates candidates only — and a solver that scans everyone —
make identical decisions.

The grid itself is a uniform bucketing of *user* homes.  Per event, whole
cells are discarded with a rectangle lower bound
(``2 * lb(cell, e) + fee_e > max-budget-in-cell + tol``); surviving cells
are refined member by member with the exact test.  The lower bound is the
metric's distance to the cell's tight bounding rectangle, so no feasible
user can ever be discarded at the cell level.
"""

from __future__ import annotations

import numpy as np

from repro.core.tolerances import BUDGET_TOL
from repro.obs import get_recorder

#: Average users per grid cell the bucketing aims for.
TARGET_CELL_OCCUPANCY = 64


class SpatialCandidateIndex:
    """Per-event candidate user sets over a uniform spatial grid.

    Parameters
    ----------
    user_coords:
        ``(n, 2)`` float64 user home coordinates.
    budgets:
        ``(n,)`` float64 travel budgets ``B_u``.
    event_coords:
        ``(m, 2)`` float64 event venue coordinates.
    fees:
        ``(m,)`` float64 admission fees (zeros when the cost model is
        fee-free).
    metric:
        The travel metric (must provide ``cross_coords`` and
        ``rect_lower_bound``).
    tol:
        The budget tolerance; defaults to the repo-wide
        :data:`~repro.core.tolerances.BUDGET_TOL` so the candidate test
        is exactly the kernel's.
    """

    def __init__(
        self,
        user_coords: np.ndarray,
        budgets: np.ndarray,
        event_coords: np.ndarray,
        fees: np.ndarray,
        metric: object,
        tol: float = BUDGET_TOL,
    ) -> None:
        self._user_coords = np.asarray(user_coords, dtype=float).reshape(-1, 2)
        self._budgets = np.asarray(budgets, dtype=float).reshape(-1)
        self._event_coords = np.asarray(event_coords, dtype=float).reshape(
            -1, 2
        )
        self._fees = np.asarray(fees, dtype=float).reshape(-1)
        self._metric = metric
        self._tol = tol
        self._build_grid()
        self._candidates: list[np.ndarray] = [
            self._compute_candidates(e) for e in range(self.n_events)
        ]
        self._active_mask: np.ndarray | None = None
        obs = get_recorder()
        obs.count("grid.builds")
        obs.count(
            "grid.candidate_pairs",
            int(sum(c.size for c in self._candidates)),
        )
        obs.count(
            "grid.pruned_pairs",
            int(self.n_users) * int(self.n_events)
            - int(sum(c.size for c in self._candidates)),
        )

    # ------------------------------------------------------------------ #
    # Construction internals
    # ------------------------------------------------------------------ #

    def _build_grid(self) -> None:
        n = self.n_users
        coords = self._user_coords
        if n == 0:
            self._cell_slices = np.zeros(1, dtype=np.intp)
            self._sorted_users = np.zeros(0, dtype=np.intp)
            self._user_rank = np.zeros(0, dtype=np.intp)
            self._cell_lo = np.zeros((0, 2))
            self._cell_hi = np.zeros((0, 2))
            self._cell_max_budget = np.zeros(0)
            return
        cells_per_axis = max(1, int(np.sqrt(n / TARGET_CELL_OCCUPANCY)))
        lo = coords.min(axis=0)
        hi = coords.max(axis=0)
        span = np.maximum(hi - lo, 1e-12)
        # Clip keeps the max coordinate in the last cell.
        ix = np.clip(
            ((coords[:, 0] - lo[0]) / span[0] * cells_per_axis).astype(
                np.intp
            ),
            0,
            cells_per_axis - 1,
        )
        iy = np.clip(
            ((coords[:, 1] - lo[1]) / span[1] * cells_per_axis).astype(
                np.intp
            ),
            0,
            cells_per_axis - 1,
        )
        cell_of_user = ix * cells_per_axis + iy
        order = np.argsort(cell_of_user, kind="stable").astype(np.intp)
        sorted_cells = cell_of_user[order]
        # Only non-empty cells are materialised; ``_cell_slices`` are the
        # boundaries of each occupied cell's run inside ``_sorted_users``.
        unique_cells, starts = np.unique(sorted_cells, return_index=True)
        self._sorted_users = order
        # Inverse permutation: a user's position inside ``_sorted_users``
        # (used to locate their cell without an O(n) scan).
        self._user_rank = np.empty(n, dtype=np.intp)
        self._user_rank[order] = np.arange(n, dtype=np.intp)
        self._cell_slices = np.append(starts, n).astype(np.intp)
        n_cells = unique_cells.size
        cell_lo = np.empty((n_cells, 2))
        cell_hi = np.empty((n_cells, 2))
        cell_max_budget = np.empty(n_cells)
        for c in range(n_cells):
            members = order[self._cell_slices[c] : self._cell_slices[c + 1]]
            member_coords = coords[members]
            # Tight per-cell bounding rectangle of the *actual* members —
            # tighter than the nominal grid rectangle, equally sound.
            cell_lo[c] = member_coords.min(axis=0)
            cell_hi[c] = member_coords.max(axis=0)
            cell_max_budget[c] = self._budgets[members].max()
        self._cell_lo = cell_lo
        self._cell_hi = cell_hi
        self._cell_max_budget = cell_max_budget

    def _compute_candidates(self, event: int) -> np.ndarray:
        """Exact candidate set of one event (sorted global user ids)."""
        if self.n_users == 0:
            return np.zeros(0, dtype=np.intp)
        fee = float(self._fees[event])
        point = self._event_coords[event]
        lower = self._metric.rect_lower_bound(
            point, self._cell_lo, self._cell_hi
        )
        # A cell survives when even its best case (closest corner, richest
        # member) might be feasible; everything else is provably out.
        alive = 2.0 * lower + fee <= self._cell_max_budget + self._tol
        if not alive.any():
            return np.zeros(0, dtype=np.intp)
        member_runs = [
            self._sorted_users[
                self._cell_slices[c] : self._cell_slices[c + 1]
            ]
            for c in np.flatnonzero(alive)
        ]
        members = np.concatenate(member_runs)
        # Exact refinement with the metric's own block floats: identical
        # values (and the identical ``<= B + tol`` comparison) to the
        # kernel's singleton budget test.
        distances = self._metric.cross_coords(
            self._user_coords[members], point[None, :]
        )[:, 0]
        feasible = (
            2.0 * distances + fee <= self._budgets[members] + self._tol
        )
        return np.sort(members[feasible]).astype(np.intp)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def n_users(self) -> int:
        return int(self._user_coords.shape[0])

    @property
    def n_events(self) -> int:
        return int(self._event_coords.shape[0])

    def candidate_users(self, event: int) -> np.ndarray:
        """Users whose singleton round trip to ``event`` fits their budget
        (sorted ascending, read-only)."""
        row = self._candidates[event].view()
        row.flags.writeable = False
        return row

    def candidate_count(self, event: int) -> int:
        return int(self._candidates[event].size)

    def active_user_mask(self) -> np.ndarray:
        """Boolean mask of users with at least one candidate event.

        A ``False`` user can never attend anything: every event fails the
        singleton budget bound, which lower-bounds every richer plan.
        Read-only; cached.
        """
        if self._active_mask is None:
            mask = np.zeros(self.n_users, dtype=bool)
            for candidates in self._candidates:
                mask[candidates] = True
            mask.flags.writeable = False
            self._active_mask = mask
        return self._active_mask

    def active_users(self) -> np.ndarray:
        """Sorted ids of users with at least one candidate event."""
        return np.flatnonzero(self.active_user_mask()).astype(np.intp)

    def candidate_pairs(self) -> int:
        """Total kept (user, event) pairs across all events."""
        return int(sum(c.size for c in self._candidates))

    # ------------------------------------------------------------------ #
    # Functional updates (mirror the Instance.with_* cache carries)
    # ------------------------------------------------------------------ #

    def with_event_location(
        self, event: int, coord: np.ndarray
    ) -> "SpatialCandidateIndex":
        """A patched copy for one moved event: only its candidate set is
        recomputed; the grid and every other event's set are shared."""
        clone = self._shallow_clone()
        coords = self._event_coords.copy()
        coords[event] = np.asarray(coord, dtype=float)
        clone._event_coords = coords
        clone._candidates = list(self._candidates)
        clone._candidates[event] = clone._compute_candidates(event)
        clone._active_mask = None
        return clone

    def with_appended_event(
        self, coord: np.ndarray, fee: float
    ) -> "SpatialCandidateIndex":
        """An extended copy with one more event column (IEP ``NewEvent``)."""
        clone = self._shallow_clone()
        clone._event_coords = np.vstack(
            [self._event_coords, np.asarray(coord, dtype=float)[None, :]]
        )
        clone._fees = np.append(self._fees, float(fee))
        clone._candidates = list(self._candidates)
        clone._candidates.append(
            clone._compute_candidates(self.n_events)
        )
        clone._active_mask = None
        return clone

    def with_user_budget(
        self, user: int, budget: float
    ) -> "SpatialCandidateIndex":
        """A patched copy for one user's new budget (IEP ``BudgetChange``).

        Exact in O(m): the user's feasibility against every event is
        recomputed with the same ``cross_coords`` floats and the same
        ``<= B + tol`` comparison the full rebuild uses, and their id is
        inserted into / removed from each event's sorted candidate row
        accordingly.  The cell-level max budget is kept an *upper bound*
        (raised on increase, left stale-high on decrease) — a loose bound
        only makes future per-event recomputes prune fewer cells, never
        discard a feasible user, so later ``with_event_location`` /
        ``with_appended_event`` patches stay exact.
        """
        user = int(user)
        budget = float(budget)
        clone = self._shallow_clone()
        budgets = self._budgets.copy()
        budgets[user] = budget
        clone._budgets = budgets
        if self._cell_max_budget.size:
            rank = int(self._user_rank[user])
            cell = int(
                np.searchsorted(self._cell_slices, rank, side="right") - 1
            )
            if budget > self._cell_max_budget[cell]:
                raised = self._cell_max_budget.copy()
                raised[cell] = budget
                clone._cell_max_budget = raised
        distances = self._metric.cross_coords(
            self._user_coords[user : user + 1], self._event_coords
        )[0]
        feasible = 2.0 * distances + self._fees <= budget + self._tol
        clone._candidates = list(self._candidates)
        for event in range(self.n_events):
            row = self._candidates[event]
            pos = int(np.searchsorted(row, user))
            present = pos < row.size and row[pos] == user
            if feasible[event] and not present:
                clone._candidates[event] = np.insert(row, pos, user)
            elif not feasible[event] and present:
                clone._candidates[event] = np.delete(row, pos)
        clone._active_mask = None
        return clone

    def _shallow_clone(self) -> "SpatialCandidateIndex":
        clone = object.__new__(SpatialCandidateIndex)
        clone._user_coords = self._user_coords
        clone._budgets = self._budgets
        clone._event_coords = self._event_coords
        clone._fees = self._fees
        clone._metric = self._metric
        clone._tol = self._tol
        clone._sorted_users = self._sorted_users
        clone._user_rank = self._user_rank
        clone._cell_slices = self._cell_slices
        clone._cell_lo = self._cell_lo
        clone._cell_hi = self._cell_hi
        clone._cell_max_budget = self._cell_max_budget
        clone._candidates = self._candidates
        clone._active_mask = self._active_mask
        return clone
