"""Successive-shortest-path min-cost flow with Johnson potentials.

Negative arc costs are allowed (initial potentials come from one Bellman-Ford
pass); subsequent shortest-path searches run Dijkstra on reduced costs, the
standard SSP refinement.  Complexity is O(F * m log n) for F units of flow,
which is ample for the bipartite rounding/matching graphs in this repository
(unit capacities, a few thousand arcs).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.flow.graph import FlowNetwork
from repro.obs import get_recorder

_INF = math.inf


@dataclass
class MinCostFlowResult:
    """Outcome of a min-cost flow computation."""

    flow: float
    cost: float

    def __iter__(self):
        return iter((self.flow, self.cost))


def min_cost_flow(
    network: FlowNetwork,
    source: int,
    sink: int,
    max_flow: float = _INF,
) -> MinCostFlowResult:
    """Route up to ``max_flow`` units from ``source`` to ``sink`` at min cost.

    The network's arcs are mutated in place (inspect per-arc flow through
    :meth:`FlowNetwork.flow_on`).  Returns total flow routed and its cost.
    """
    obs = get_recorder()
    n = network.n_nodes
    with obs.span("flow.mincost"):
        potential = _bellman_ford_potentials(network, source)

        total_flow = 0.0
        total_cost = 0.0
        while total_flow < max_flow:
            distance, parent_arc = _dijkstra(network, source, potential)
            if distance[sink] == _INF:
                break
            obs.count("flow.augmenting_paths")
            for node in range(n):
                if distance[node] < _INF:
                    potential[node] += distance[node]

            # Bottleneck along the augmenting path.
            bottleneck = max_flow - total_flow
            node = sink
            while node != source:
                arc = parent_arc[node]
                bottleneck = min(bottleneck, network.arc(arc).residual)
                node = network.arc(arc ^ 1).head
            node = sink
            while node != source:
                arc = parent_arc[node]
                network.push(arc, bottleneck)
                total_cost += bottleneck * network.arc(arc).cost
                node = network.arc(arc ^ 1).head
            total_flow += bottleneck
    obs.count("flow.units_routed", total_flow)
    return MinCostFlowResult(total_flow, total_cost)


def _bellman_ford_potentials(
    network: FlowNetwork, source: int
) -> list[float]:
    """Initial node potentials (shortest distances allowing negative costs)."""
    n = network.n_nodes
    distance = [_INF] * n
    distance[source] = 0.0
    for _ in range(n - 1):
        changed = False
        for tail in range(n):
            if distance[tail] == _INF:
                continue
            for arc_index in network.arcs_from(tail):
                arc = network.arc(arc_index)
                if arc.residual > 1e-12:
                    candidate = distance[tail] + arc.cost
                    if candidate < distance[arc.head] - 1e-12:
                        distance[arc.head] = candidate
                        changed = True
        if not changed:
            break
    return [d if d < _INF else 0.0 for d in distance]


def _dijkstra(
    network: FlowNetwork, source: int, potential: list[float]
) -> tuple[list[float], list[int]]:
    """Dijkstra on reduced costs; returns distances and parent arcs."""
    n = network.n_nodes
    distance = [_INF] * n
    parent_arc = [-1] * n
    distance[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, tail = heapq.heappop(heap)
        if d > distance[tail] + 1e-12:
            continue
        for arc_index in network.arcs_from(tail):
            arc = network.arc(arc_index)
            if arc.residual <= 1e-12:
                continue
            reduced = arc.cost + potential[tail] - potential[arc.head]
            candidate = d + reduced
            if candidate < distance[arc.head] - 1e-12:
                distance[arc.head] = candidate
                parent_arc[arc.head] = arc_index
                heapq.heappush(heap, (candidate, arc.head))
    return distance, parent_arc
