"""Residual-graph representation for min-cost flow.

Edges are stored in a flat arc list with twinned residual arcs (arc ``i`` and
``i ^ 1`` are each other's reverses), the standard competitive-programming
layout: cache-friendly and trivial to update during augmentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class _Arc:
    head: int
    capacity: float
    cost: float
    flow: float = 0.0

    @property
    def residual(self) -> float:
        return self.capacity - self.flow


@dataclass
class FlowNetwork:
    """A directed flow network with per-arc capacities and costs."""

    n_nodes: int
    _arcs: list[_Arc] = field(default_factory=list)
    _adjacency: list[list[int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_nodes < 0:
            raise ValueError("node count must be non-negative")
        if not self._adjacency:
            self._adjacency = [[] for _ in range(self.n_nodes)]

    def add_node(self) -> int:
        """Add a node; returns its index."""
        self._adjacency.append([])
        self.n_nodes += 1
        return self.n_nodes - 1

    def add_edge(self, tail: int, head: int, capacity: float, cost: float) -> int:
        """Add a directed arc; returns its arc index.

        A reverse residual arc with zero capacity and negated cost is added
        automatically at index ``returned + 1``.
        """
        for node in (tail, head):
            if not 0 <= node < self.n_nodes:
                raise IndexError(f"unknown node {node}")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        index = len(self._arcs)
        self._arcs.append(_Arc(head, float(capacity), float(cost)))
        self._arcs.append(_Arc(tail, 0.0, -float(cost)))
        self._adjacency[tail].append(index)
        self._adjacency[head].append(index + 1)
        return index

    def arcs_from(self, node: int) -> list[int]:
        return self._adjacency[node]

    def arc(self, index: int) -> _Arc:
        return self._arcs[index]

    def flow_on(self, edge_index: int) -> float:
        """Flow currently routed on the arc returned by :meth:`add_edge`."""
        return self._arcs[edge_index].flow

    def push(self, arc_index: int, amount: float) -> None:
        """Push ``amount`` units along ``arc_index`` and its twin."""
        self._arcs[arc_index].flow += amount
        self._arcs[arc_index ^ 1].flow -= amount
