"""Network-flow substrate.

A from-scratch successive-shortest-path min-cost max-flow solver.  It backs
the Shmoys-Tardos rounding step of the GAP-based algorithm (integral matching
on the bipartite slot graph) and the matching baseline, and is validated
against ``networkx`` in tests.
"""

from repro.flow.graph import FlowNetwork
from repro.flow.mincost import MinCostFlowResult, min_cost_flow

__all__ = ["FlowNetwork", "MinCostFlowResult", "min_cost_flow"]
