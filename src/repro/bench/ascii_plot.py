"""ASCII line charts for figure reproductions.

The paper's figures are line plots; the benchmark harness archives each as
a data table *and* a terminal-friendly chart so a reproduction run can be
eyeballed without a plotting stack.  Series are scaled into a fixed-size
character grid; a log-scale option handles the time plots whose two curves
sit orders of magnitude apart.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

_MARKERS = "*o+x#@"


def ascii_chart(
    title: str,
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    log_y: bool = False,
) -> str:
    """Render curves into a character grid.

    Each series gets a marker from ``*o+x#@`` (legend appended).  ``log_y``
    plots ``log10`` of the values (non-positive values are clamped to the
    smallest positive one observed).
    """
    if not xs or not series:
        return f"{title}\n(no data)"
    values = [v for curve in series.values() for v in curve]
    if log_y:
        floor = min((v for v in values if v > 0), default=1.0)
        transform = lambda v: math.log10(max(v, floor))  # noqa: E731
    else:
        transform = lambda v: v  # noqa: E731

    ys = [transform(v) for v in values]
    y_min, y_max = min(ys), max(ys)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, curve) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        points = [
            (
                round((x - x_min) / (x_max - x_min) * (width - 1)),
                round(
                    (transform(y) - y_min) / (y_max - y_min) * (height - 1)
                ),
            )
            for x, y in zip(xs, curve)
        ]
        # Connect consecutive points with linear interpolation.
        for (c0, r0), (c1, r1) in zip(points, points[1:]):
            steps = max(abs(c1 - c0), abs(r1 - r0), 1)
            for step in range(steps + 1):
                column = round(c0 + (c1 - c0) * step / steps)
                row = round(r0 + (r1 - r0) * step / steps)
                grid[height - 1 - row][column] = marker
        for column, row in points:  # markers win over connector lines
            grid[height - 1 - row][column] = marker

    y_top = f"{y_max:.3g}" + (" (log10)" if log_y else "")
    y_bottom = f"{y_min:.3g}"
    lines = [title]
    lines.append(f"  ^ {y_top}")
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width + ">")
    lines.append(f"   {x_min:<10.6g}{' ' * max(width - 22, 1)}{x_max:>10.6g}")
    legend = "   ".join(
        f"{_MARKERS[index % len(_MARKERS)]} {name}"
        for index, name in enumerate(series)
    )
    lines.append(f"  [{y_bottom} at baseline]   {legend}")
    return "\n".join(lines)
