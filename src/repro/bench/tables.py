"""Paper-style output: fixed-width tables, figure series, CSV archives.

Every benchmark prints the same rows/series the paper reports (Table VI,
Figs 2-5, Tables VII-IX) and archives them under ``results/`` so
EXPERIMENTS.md can cite concrete numbers.
"""

from __future__ import annotations

import csv
from collections.abc import Sequence
from pathlib import Path


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """A fixed-width text table with a title rule."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in rendered_rows))
        if rendered_rows
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = [title, "=" * max(len(title), sum(widths) + 2 * len(widths))]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
) -> str:
    """A figure as text: one row per x value, one column per curve."""
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(values[index] for values in series.values())]
        for index, x in enumerate(xs)
    ]
    return format_table(title, headers, rows)


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> Path:
    """Archive rows as CSV (parents created); returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def _render(cell: object) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) >= 1e5 or abs(cell) < 1e-3):
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)
