"""Machine-readable benchmark report for the CI regression gate.

``python -m repro.bench.report --preset small --out bench_report.json``
runs a fixed, seeded workload (both GEPC solvers plus an IEP operation
stream) and emits a stable ``BENCH_REPORT.json`` document::

    {
      "schema": "repro.bench.report",
      "schema_version": 1,
      "preset": "small", "city": "beijing", "scale": 0.5, "seed": 0,
      "entries": [
        {"solver": "greedy", "wall_time_s": ..., "peak_mib": ...,
         "utility": ..., "cancelled": 0,
         "counters": {...}, "spans": {path: {calls, seconds}}},
        ...
      ]
    }

``scripts/check_bench_regression.py`` diffs this against the committed
``results/bench_baseline.json``: wall time is gated at a slowdown factor
(absolute times vary across machines), utility at a tolerance (greedy and
the IEP stream are bit-deterministic for a fixed seed; the GAP solver gets
slack for LP-backend variation).  See ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.bench.harness import measure
from repro.bench.tables import format_table
from repro.core.gepc import GAPBasedSolver, GreedySolver
from repro.obs import recording
from repro.platform import EBSNPlatform, OperationStream

SCHEMA = "repro.bench.report"
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Preset:
    """One fixed CI workload: a scaled city plus an operation stream."""

    city: str
    scale: float
    operations: int
    include_gap: bool = True
    trace_memory: bool = True


PRESETS: dict[str, Preset] = {
    "small": Preset(city="beijing", scale=0.5, operations=20),
    "medium": Preset(city="auckland", scale=0.5, operations=30),
    "large": Preset(city="vancouver", scale=0.25, operations=40),
    # The incremental-kernel hot path: full-size city, greedy + IEP stream
    # only (the GAP solver's LP would dominate and measure the LP backend,
    # not the plan kernel), pure wall-clock (tracemalloc's per-malloc hook
    # slows vectorized numpy code ~10x and would drown the signal).
    "kernel": Preset(
        city="vancouver",
        scale=1.0,
        operations=30,
        include_gap=False,
        trace_memory=False,
    ),
}


def _solver_entry(
    name: str, solver, instance, seed: int, trace_memory: bool = True
) -> dict:
    with recording() as recorder:
        solution, result = measure(
            name, lambda: solver.solve(instance), trace_memory=trace_memory
        )
    return {
        "solver": name,
        "seed": seed,
        "wall_time_s": result.seconds,
        "peak_mib": result.memory_mb,
        "utility": result.utility,
        "cancelled": len(solution.cancelled),
        "counters": dict(recorder.counters),
        "spans": recorder.snapshot()["spans"],
    }


def _iep_entry(
    instance, seed: int, operations: int, trace_memory: bool = True
) -> dict:
    platform = EBSNPlatform(instance, solver=GreedySolver(seed=seed))
    platform.publish_plans()
    stream = OperationStream(seed=seed)

    def run() -> float:
        # Operations are drawn one at a time against the *current* state
        # (a pre-generated batch would go stale as repairs mutate the plan).
        for _ in range(operations):
            operation = next(
                iter(stream.mixed(platform.instance, platform.plan, 1))
            )
            platform.submit(operation)
        return platform.audit()["utility"]

    label = f"iep-mixed-{operations}"
    with recording() as recorder:
        _, result = measure(label, run, trace_memory=trace_memory)
    return {
        "solver": label,
        "seed": seed,
        "wall_time_s": result.seconds,
        "peak_mib": result.memory_mb,
        "utility": result.utility,
        "cancelled": 0,
        "counters": dict(recorder.counters),
        "spans": recorder.snapshot()["spans"],
    }


def build_report(preset_name: str, seed: int = 0) -> dict:
    """Run the preset workload and return the report document."""
    try:
        preset = PRESETS[preset_name]
    except KeyError:
        raise ValueError(
            f"unknown preset {preset_name!r}; choose from {sorted(PRESETS)}"
        ) from None
    # Imported late: repro.datasets pulls numpy-heavy generator modules.
    from repro.datasets import make_city

    instance = make_city(preset.city, scale=preset.scale)
    entries = [
        _solver_entry(
            "greedy",
            GreedySolver(seed=seed),
            instance,
            seed,
            trace_memory=preset.trace_memory,
        ),
    ]
    if preset.include_gap:
        entries.append(
            _solver_entry(
                "gap",
                GAPBasedSolver(backend="scipy"),
                instance,
                seed,
                trace_memory=preset.trace_memory,
            )
        )
    entries.append(
        _iep_entry(
            instance, seed, preset.operations, trace_memory=preset.trace_memory
        )
    )
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "preset": preset_name,
        "city": preset.city,
        "scale": preset.scale,
        "seed": seed,
        "entries": entries,
    }


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.report",
        description="Emit the BENCH_REPORT.json document CI diffs.",
    )
    parser.add_argument("--preset", default="small", choices=sorted(PRESETS))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="bench_report.json")
    args = parser.parse_args(argv)

    report = build_report(args.preset, seed=args.seed)
    path = write_report(report, args.out)
    print(
        format_table(
            f"Bench report: {args.preset} "
            f"({report['city']} x{report['scale']}) -> {path}",
            ["solver", "utility", "time (s)", "peak (MiB)", "cancelled"],
            [
                [
                    entry["solver"],
                    entry["utility"],
                    entry["wall_time_s"],
                    entry["peak_mib"],
                    entry["cancelled"],
                ]
                for entry in report["entries"]
            ],
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
