"""Machine-readable benchmark report for the CI regression gate.

``python -m repro.bench.report --preset small --out bench_report.json``
runs a fixed, seeded workload (both GEPC solvers plus an IEP operation
stream) and emits a stable ``BENCH_REPORT.json`` document::

    {
      "schema": "repro.bench.report",
      "schema_version": 1,
      "preset": "small", "city": "beijing", "scale": 0.5, "seed": 0,
      "entries": [
        {"solver": "greedy", "wall_time_s": ..., "peak_mib": ...,
         "utility": ..., "cancelled": 0,
         "counters": {...}, "spans": {path: {calls, seconds}}},
        ...
      ]
    }

``scripts/check_bench_regression.py`` diffs this against the committed
``results/bench_baseline.json``: wall time is gated at a slowdown factor
(absolute times vary across machines), utility at a tolerance (greedy and
the IEP stream are bit-deterministic for a fixed seed; the GAP solver gets
slack for LP-backend variation).  See ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.bench.harness import measure
from repro.bench.tables import format_table
from repro.core.gepc import GAPBasedSolver, GreedySolver
from repro.obs import recording
from repro.platform import EBSNPlatform, OperationStream

SCHEMA = "repro.bench.report"
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Preset:
    """One fixed CI workload: a scaled city plus an operation stream."""

    city: str
    scale: float
    operations: int
    include_gap: bool = True
    trace_memory: bool = True
    # Sharded presets measure greedy-mono vs ShardedSolver at worker
    # counts 1 and N instead of the greedy/gap/IEP trio.
    sharded: bool = False
    shards: int = 4
    # Allowed one-sided utility gap of the sharded entries below
    # greedy-mono (boundary loss grows with shard count and city size).
    utility_gap_rtol: float = 0.02
    # Synthetic workload (n_users, n_events, n_groups, n_clusters):
    # when set, the instance comes from ``generate_ebsn`` instead of
    # ``make_city`` — cities cap at their real-data population, and the
    # shard-scaling preset needs a workload large enough that per-shard
    # solve time dominates dispatch overhead.
    synthetic: tuple[int, int, int, int] | None = None
    # Kernel-strategy presets additionally pin the greedy solve to each
    # named ``repro.core.kernel`` strategy and emit one entry per
    # strategy; the batched entry carries the speedup + bit-identical
    # utility cross gates against the rowwise one.
    kernel_strategies: tuple[str, ...] = ()
    # Scale-soak presets (``scale_users > 0``): a synthetic
    # ``generate_scale_instance`` workload served through
    # :class:`repro.scale.BatchedPlatform` under the **tiled** distance
    # backend with the LRU pinned to ``tile_cache_mib``.  The entry
    # reports per-operation latency percentiles, throughput, peak RSS,
    # and distance-plane compression, each gated by the thresholds
    # below (emitted with the entry so a regenerated baseline keeps
    # its gates; see scripts/check_bench_regression.py).
    scale_users: int = 0
    tile_cache_mib: float = 32.0
    max_latency_p50_ms: float = 0.0
    max_latency_p99_ms: float = 0.0
    min_ops_per_sec: float = 0.0
    max_peak_rss_mib: float = 0.0
    min_plane_compression: float = 5.0
    # Durable presets compare per-submit latency of the in-memory
    # platform against the DurablePlatform (WAL append + fsync +
    # periodic snapshots) on the same seeded stream; the durable entry
    # carries a ``max_latency_ratio_vs`` gate at this p50 factor.
    durable: bool = False
    durable_latency_ratio: float = 1.5
    # Service presets submit the identical one-op frames through the
    # in-process BatchedPlatform and over the planning service's HTTP
    # socket (ServiceThread in this process); the service entry gates
    # its p50 frame latency at ``service_latency_ratio``x the
    # in-process p50 and its utility at bit-identical — the wire
    # protocol must never change what gets applied (docs/service.md).
    service: bool = False
    service_users: int = 64
    service_events: int = 12
    service_latency_ratio: float = 10.0


PRESETS: dict[str, Preset] = {
    "small": Preset(city="beijing", scale=0.5, operations=20),
    "medium": Preset(city="auckland", scale=0.5, operations=30),
    "large": Preset(city="vancouver", scale=0.25, operations=40),
    # The incremental-kernel hot path: full-size city, greedy + IEP stream
    # only (the GAP solver's LP would dominate and measure the LP backend,
    # not the plan kernel), pure wall-clock (tracemalloc's per-malloc hook
    # slows vectorized numpy code ~10x and would drown the signal).
    "kernel": Preset(
        city="vancouver",
        scale=1.0,
        operations=30,
        include_gap=False,
        trace_memory=False,
        kernel_strategies=("rowwise", "batched"),
    ),
    # Shard-parallel scaling: monolithic greedy vs the sharded solver at
    # workers=1 and workers=N on the same partition (same shard count and
    # seed).  Pure wall-clock for the same reason as "kernel"; the
    # cross-entry speedup/utility gates ride on these entries (see
    # scripts/check_bench_regression.py and docs/scaling.md).  The
    # workload is synthetic because real cities cap at their survey
    # population: the w4-vs-w1 speedup gate needs per-shard solve times
    # that dwarf pool dispatch, which Vancouver (2012 users) cannot
    # provide.  Eight shards over four workers double as load balancing —
    # k-means shards are uneven, and two small shards per worker pack far
    # tighter than one large one.
    "sharded": Preset(
        city="meetup-synthetic",
        scale=1.0,
        operations=0,
        include_gap=False,
        trace_memory=False,
        sharded=True,
        shards=8,
        utility_gap_rtol=0.12,
        synthetic=(12000, 900, 120, 8),
    ),
    # Million-user trajectory soak (ROADMAP open item 3): 10^5 users,
    # 10^4 mixed operations through the batched front-end under the
    # tiled distance backend with a 32 MiB LRU — the dense plane would
    # be ~195 MiB, so the compression gate is what keeps the backend
    # honest.  p50 is the enqueue fast path (queued, no flush); p99 is
    # a flush boundary carrying a whole coalesced batch, so its budget
    # is ~batch x the amortised per-op cost.  Too slow for CI — run
    # locally to regenerate results/bench_baseline_scale.json.
    "scale": Preset(
        city="scale-synthetic",
        scale=1.0,
        operations=10_000,
        include_gap=False,
        trace_memory=False,
        scale_users=100_000,
        tile_cache_mib=32.0,
        max_latency_p50_ms=10.0,
        max_latency_p99_ms=60_000.0,
        min_ops_per_sec=1.5,
        max_peak_rss_mib=2048.0,
        min_plane_compression=5.0,
    ),
    # WAL-overhead gate (docs/durability.md): the same seeded operation
    # stream submitted through the in-memory platform and through the
    # DurablePlatform (fsync'd WAL + snapshots every 32 ops); the
    # durable entry gates its p50 submit latency at 1.5x the in-memory
    # p50 and its utility at bit-identical.  Half-scale Vancouver so a
    # submit is a real repair (~4ms): the gate measures the durability
    # tax on production-shaped operations, where the per-append
    # fdatasync is a fraction of the repair — not on toy sub-ms applies
    # that any disk flush would dwarf.
    "durable": Preset(
        city="vancouver",
        scale=0.5,
        operations=150,
        include_gap=False,
        trace_memory=False,
        durable=True,
    ),
    # Wire-overhead gate (docs/service.md): the same spec-deterministic
    # tenant takes one operation per frame through the in-process
    # batched path and through the full service request path — HTTP
    # round trip, dispatch, single-writer queue, WAL append, flush.
    # The throughput floor is deliberately loose (localhost RPCs on a
    # loaded CI runner); the p50 ratio and bit-identical utility are
    # the real gates.
    "service": Preset(
        city="meetup-synthetic",
        scale=1.0,
        operations=150,
        include_gap=False,
        trace_memory=False,
        service=True,
        min_ops_per_sec=25.0,
    ),
    # CI-sized soak smoke: same machinery at 10^4 users / 500 ops with
    # a 4 MiB LRU (the 10^4-user plane is only ~20 MiB, so the cache
    # must shrink for compression to mean anything at this size).
    "scale-smoke": Preset(
        city="scale-synthetic",
        scale=1.0,
        operations=500,
        include_gap=False,
        trace_memory=False,
        scale_users=10_000,
        tile_cache_mib=4.0,
        max_latency_p50_ms=10.0,
        max_latency_p99_ms=10_000.0,
        min_ops_per_sec=8.0,
        max_peak_rss_mib=1024.0,
        min_plane_compression=2.0,
    ),
}


def _solver_entry(
    name: str, solver, instance, seed: int, trace_memory: bool = True
) -> dict:
    with recording() as recorder:
        solution, result = measure(
            name, lambda: solver.solve(instance), trace_memory=trace_memory
        )
    return {
        "solver": name,
        "seed": seed,
        "wall_time_s": result.seconds,
        "peak_mib": result.memory_mb,
        "utility": result.utility,
        "cancelled": len(solution.cancelled),
        "counters": dict(recorder.counters),
        "spans": recorder.snapshot()["spans"],
    }


def _iep_entry(
    instance, seed: int, operations: int, trace_memory: bool = True
) -> dict:
    platform = EBSNPlatform(instance, solver=GreedySolver(seed=seed))
    platform.publish_plans()
    stream = OperationStream(seed=seed)

    def run() -> float:
        # Operations are drawn one at a time against the *current* state
        # (a pre-generated batch would go stale as repairs mutate the plan).
        for _ in range(operations):
            operation = next(
                iter(stream.mixed(platform.instance, platform.plan, 1))
            )
            platform.submit(operation)
        return platform.audit()["utility"]

    label = f"iep-mixed-{operations}"
    with recording() as recorder:
        _, result = measure(label, run, trace_memory=trace_memory)
    return {
        "solver": label,
        "seed": seed,
        "wall_time_s": result.seconds,
        "peak_mib": result.memory_mb,
        "utility": result.utility,
        "cancelled": 0,
        "counters": dict(recorder.counters),
        "spans": recorder.snapshot()["spans"],
    }


def _kernel_strategy_entries(
    instance, seed: int, strategies: tuple[str, ...], trace_memory: bool
) -> list[dict]:
    """One greedy entry per pinned kernel strategy, best-of-3 timed.

    Runs are interleaved (rep-major, strategy-minor) so machine drift
    hits every strategy equally, and each entry keeps its *fastest* rep —
    the standard noise treatment for a ratio gate on shared runners.
    The strategies are bit-identical by contract, so which rep's utility
    and counters survive is immaterial; the batched entry's
    ``equal_utility_vs`` gate enforces exactly that in CI.
    """
    from repro.core import kernel as kernel_mod

    runs: dict[str, list[dict]] = {name: [] for name in strategies}
    for _ in range(3):
        for name in strategies:
            with kernel_mod.use_kernel(name):
                runs[name].append(
                    _solver_entry(
                        f"greedy-{name}",
                        GreedySolver(seed=seed),
                        instance,
                        seed,
                        trace_memory=trace_memory,
                    )
                )
    entries = [
        min(runs[name], key=lambda e: float(e["wall_time_s"]))
        for name in strategies
    ]
    by_name = {entry["solver"]: entry for entry in entries}
    if "greedy-batched" in by_name and "greedy-rowwise" in by_name:
        batched = by_name["greedy-batched"]
        batched["equal_utility_vs"] = {"vs": "greedy-rowwise"}
        batched["min_speedup"] = {
            "vs": "greedy-rowwise",
            "factor": 2.0,
            "min_cores": 1,
        }
    return entries


def _percentile_ms(sorted_seconds: list[float], q: float) -> float:
    """Nearest-rank percentile of a sorted latency list, in ms."""
    if not sorted_seconds:
        return 0.0
    rank = min(len(sorted_seconds) - 1, int(round(q * (len(sorted_seconds) - 1))))
    return sorted_seconds[rank] * 1000.0


def _scale_entries(preset: Preset, seed: int) -> list[dict]:
    """The scale-soak workload: publish, then a batched IEP stream.

    The tiled backend is pinned (this preset exists to gate it) and the
    LRU budget comes from the preset, not the caller's environment.
    Per-operation latency is the wall time of each ``enqueue`` call:
    most ops just queue (the p50 fast path), one in ``max_pending``
    carries the coalesced flush (the p99 tail).  Throughput divides the
    whole stream — draws, queue, flushes, final drain — by the
    operation count, so it is the number capacity planning wants.
    """
    import time

    from repro.bench.memory import peak_rss_mib
    from repro.core.metrics import total_utility
    from repro.core.tiles import use_distance_backend
    from repro.datasets import ScaleConfig, generate_scale_instance
    from repro.scale import BatchedPlatform

    previous = os.environ.get("REPRO_TILE_CACHE_MIB")
    os.environ["REPRO_TILE_CACHE_MIB"] = str(preset.tile_cache_mib)
    try:
        with use_distance_backend("tiled"), recording() as recorder:
            config = ScaleConfig(n_users=preset.scale_users, seed=seed)
            instance = generate_scale_instance(config)
            platform = BatchedPlatform(
                instance, solver=GreedySolver(seed=seed)
            )
            publish_start = time.perf_counter()
            publish_utility = platform.publish_plans()
            publish_seconds = time.perf_counter() - publish_start
            stream = OperationStream(seed=seed)
            latencies: list[float] = []
            soak_start = time.perf_counter()
            for _ in range(preset.operations):
                operation = next(
                    iter(stream.mixed(platform.instance, platform.plan, 1))
                )
                op_start = time.perf_counter()
                platform.enqueue(operation)
                latencies.append(time.perf_counter() - op_start)
            platform.drain()
            soak_seconds = time.perf_counter() - soak_start
            utility = total_utility(platform.instance, platform.plan)
            plane_stats = platform.instance.distances.tile_stats()
    finally:
        if previous is None:
            os.environ.pop("REPRO_TILE_CACHE_MIB", None)
        else:
            os.environ["REPRO_TILE_CACHE_MIB"] = previous

    latencies.sort()
    peak_rss = peak_rss_mib()
    # Compression denominator: the backend's whole resident footprint
    # (coords + event-event block + tile high-water), not just tiles —
    # scattered row serving can materialise zero tiles.
    peak_backend = max(plane_stats["peak_backend_mib"], 1e-9)
    entry = {
        "solver": f"scale-soak-{preset.operations}",
        "seed": seed,
        "wall_time_s": soak_seconds,
        "peak_mib": peak_rss,
        "utility": utility,
        "cancelled": 0,
        "counters": dict(recorder.counters),
        "spans": recorder.snapshot()["spans"],
        "publish_seconds": publish_seconds,
        "publish_utility": publish_utility,
        "latency_ms": {
            "p50": _percentile_ms(latencies, 0.50),
            "p90": _percentile_ms(latencies, 0.90),
            "p99": _percentile_ms(latencies, 0.99),
        },
        "ops_per_sec": (
            preset.operations / soak_seconds if soak_seconds > 0 else 0.0
        ),
        "peak_rss_mib": peak_rss,
        "plane": {
            "dense_equiv_plane_mib": plane_stats["dense_equiv_plane_mib"],
            "peak_resident_mib": plane_stats["peak_resident_mib"],
            "peak_backend_mib": plane_stats["peak_backend_mib"],
            "compression": plane_stats["dense_equiv_plane_mib"]
            / peak_backend,
        },
        # Gate specs ride with the entry (baseline-declared, applied to
        # the fresh report's values by check_bench_regression.py).
        "max_latency_ms": {
            "p50": preset.max_latency_p50_ms,
            "p99": preset.max_latency_p99_ms,
        },
        "min_ops_per_sec": preset.min_ops_per_sec,
        "max_peak_rss_mib": preset.max_peak_rss_mib,
        "min_plane_compression": {"factor": preset.min_plane_compression},
    }
    return [entry]


def _durable_entries(instance, preset: Preset, seed: int) -> list[dict]:
    """In-memory vs durable submit latency on one seeded stream.

    Both platforms publish the same plan (same solver seed) and then
    submit the identical operation sequence — drawn once per step
    against the in-memory platform's state; the states evolve in
    lockstep because the engine is deterministic and both sides accept
    or reject the same operations.  The durable side runs with real
    fsyncs and its default snapshot cadence: the gated number is the
    full durability tax, not a best case.  Per-op latency is each
    ``submit`` call's wall time (rejected submissions time the
    validate-and-refuse path on both sides alike).
    """
    import tempfile
    import time

    from repro.platform import DurablePlatform

    def run(make_platform, label: str) -> dict:
        platform = make_platform()
        stream = OperationStream(seed=seed)
        start = time.perf_counter()
        platform.publish_plans()
        latencies: list[float] = []
        with recording() as recorder:
            for _ in range(preset.operations):
                operation = next(
                    iter(stream.mixed(platform.instance, platform.plan, 1))
                )
                op_start = time.perf_counter()
                try:
                    platform.submit(operation)
                except (ValueError, IndexError, KeyError):
                    pass
                latencies.append(time.perf_counter() - op_start)
        seconds = time.perf_counter() - start
        utility = platform.audit()["utility"]
        if hasattr(platform, "close"):
            platform.close()
        latencies.sort()
        return {
            "solver": label,
            "seed": seed,
            "wall_time_s": seconds,
            "peak_mib": 0.0,
            "utility": utility,
            "cancelled": 0,
            "counters": dict(recorder.counters),
            "spans": recorder.snapshot()["spans"],
            "latency_ms": {
                "p50": _percentile_ms(latencies, 0.50),
                "p90": _percentile_ms(latencies, 0.90),
                "p99": _percentile_ms(latencies, 0.99),
            },
        }

    label = f"submit-memory-{preset.operations}"
    memory_entry = run(
        lambda: EBSNPlatform(instance, solver=GreedySolver(seed=seed)),
        label,
    )
    with tempfile.TemporaryDirectory(prefix="bench-durable-") as state_dir:
        durable_entry = run(
            lambda: DurablePlatform(
                instance, state_dir, solver=GreedySolver(seed=seed)
            ),
            f"submit-durable-{preset.operations}",
        )
    # Gate specs ride with the entry (baseline-declared): the WAL +
    # snapshot tax on the submit median, and bit-identical utility —
    # durability must never change what gets applied.
    durable_entry["max_latency_ratio_vs"] = {
        "vs": label,
        "quantile": "p50",
        "factor": preset.durable_latency_ratio,
    }
    durable_entry["equal_utility_vs"] = {"vs": label}
    return [memory_entry, durable_entry]


def _service_entries(preset: Preset, seed: int) -> list[dict]:
    """In-process batched submits vs the same frames over the socket.

    Both sides host the identical spec-deterministic tenant (same
    instance, solver seed, and frame granularity: one operation per
    enqueue+flush, one per RPC frame), so acceptance stays in lockstep
    and the service entry's ``equal_utility_vs`` gate is bit-exact.
    Operations are drawn step-by-step against the in-process side's
    live state and replayed verbatim over the wire.  The service side
    times the full request path — HTTP round trip, dispatch, the
    single-writer queue, WAL append (fsync off, the
    :class:`repro.service.ServiceThread` default), and batch flush —
    which is the per-frame tax docs/service.md quotes.  Throughput
    excludes publish on both sides, mirroring ``_scale_entries``.
    """
    import tempfile
    import time

    from repro.scale import BatchedPlatform
    from repro.service import ServiceClient, ServiceThread
    from repro.service.tenants import TenantSpec

    spec = TenantSpec(
        name="bench",
        users=preset.service_users,
        events=preset.service_events,
        seed=seed,
    )
    operations: list = []

    inproc_label = f"submit-inproc-{preset.operations}"
    with recording() as recorder:
        platform = BatchedPlatform(
            spec.build_instance(), solver=spec.build_solver()
        )
        publish_start = time.perf_counter()
        publish_utility = platform.publish_plans()
        publish_seconds = time.perf_counter() - publish_start
        stream = OperationStream(seed=seed)
        latencies: list[float] = []
        soak_start = time.perf_counter()
        for _ in range(preset.operations):
            operation = next(
                iter(stream.mixed(platform.instance, platform.plan, 1))
            )
            operations.append(operation)
            op_start = time.perf_counter()
            platform.enqueue(operation)
            platform.flush()
            latencies.append(time.perf_counter() - op_start)
        soak_seconds = time.perf_counter() - soak_start
        utility = platform.snapshot()["utility"]
        platform.close()
    latencies.sort()
    inproc_entry = {
        "solver": inproc_label,
        "seed": seed,
        "wall_time_s": soak_seconds,
        "peak_mib": 0.0,
        "utility": utility,
        "cancelled": 0,
        "counters": dict(recorder.counters),
        "spans": recorder.snapshot()["spans"],
        "publish_seconds": publish_seconds,
        "publish_utility": publish_utility,
        "latency_ms": {
            "p50": _percentile_ms(latencies, 0.50),
            "p90": _percentile_ms(latencies, 0.90),
            "p99": _percentile_ms(latencies, 0.99),
        },
        "ops_per_sec": (
            preset.operations / soak_seconds if soak_seconds > 0 else 0.0
        ),
    }

    service_label = f"submit-service-{preset.operations}"
    with tempfile.TemporaryDirectory(prefix="bench-service-") as root:
        with recording() as recorder, ServiceThread(root) as service:
            with ServiceClient(service.host, service.port) as client:
                client.create_tenant(spec.to_dict())
                publish_start = time.perf_counter()
                publish_utility = client.publish(spec.name)
                publish_seconds = time.perf_counter() - publish_start
                latencies = []
                soak_start = time.perf_counter()
                for operation in operations:
                    op_start = time.perf_counter()
                    client.submit(spec.name, [operation])
                    latencies.append(time.perf_counter() - op_start)
                soak_seconds = time.perf_counter() - soak_start
                served = client.summary(spec.name)["audit"]["utility"]
    latencies.sort()
    service_entry = {
        "solver": service_label,
        "seed": seed,
        "wall_time_s": soak_seconds,
        "peak_mib": 0.0,
        "utility": served,
        "cancelled": 0,
        "counters": dict(recorder.counters),
        "spans": recorder.snapshot()["spans"],
        "publish_seconds": publish_seconds,
        "publish_utility": publish_utility,
        "latency_ms": {
            "p50": _percentile_ms(latencies, 0.50),
            "p90": _percentile_ms(latencies, 0.90),
            "p99": _percentile_ms(latencies, 0.99),
        },
        "ops_per_sec": (
            preset.operations / soak_seconds if soak_seconds > 0 else 0.0
        ),
        # Gate specs ride with the entry (baseline-declared): the wire
        # tax on the frame median, a throughput floor, and bit-identical
        # utility — serving over a socket must never change the plan.
        "max_latency_ratio_vs": {
            "vs": inproc_label,
            "quantile": "p50",
            "factor": preset.service_latency_ratio,
        },
        "equal_utility_vs": {"vs": inproc_label},
        "min_ops_per_sec": preset.min_ops_per_sec,
    }
    return [inproc_entry, service_entry]


def _sharded_entries(
    instance,
    seed: int,
    shards: int,
    workers: int,
    trace_memory: bool,
    utility_gap_rtol: float = 0.02,
) -> list[dict]:
    """greedy-mono vs sharded-w1 vs sharded-wN on one fixed partition.

    Both sharded solvers are warmed up with one unmeasured solve each, so
    the measured runs see steady state: live pool processes (fork +
    import cost), warmed instance planes, and the memoized partition.
    The comparison is then pure shard *work* — slice + solve + merge —
    which is exactly what the speedup gate is about.  The cross-entry
    gate specs (``min_speedup``, ``max_utility_gap_vs``,
    ``equal_utility_vs``) are emitted with the entries so a regenerated
    baseline keeps its gates.

    ``min_cores`` is ``workers + 1``: the parent process partitions,
    dispatches, and merges while the workers solve, so a machine with
    exactly ``workers`` cores oversubscribes and measures contention,
    not parallelism.
    """
    from repro.core.gepc import GreedySolver
    from repro.scale import ShardedSolver

    entries = [
        _solver_entry(
            "greedy-mono",
            GreedySolver(seed=seed),
            instance,
            seed,
            trace_memory=trace_memory,
        )
    ]
    w1_solver = ShardedSolver(shards=shards, workers=1, seed=seed)
    try:
        w1_solver.solve(instance)  # warm-up: planes + partition memo
        serial = _solver_entry(
            "sharded-w1",
            w1_solver,
            instance,
            seed,
            trace_memory=trace_memory,
        )
    finally:
        w1_solver.close()
    serial["max_utility_gap_vs"] = {
        "vs": "greedy-mono",
        "rtol": utility_gap_rtol,
    }
    entries.append(serial)

    solver = ShardedSolver(shards=shards, workers=workers, seed=seed)
    try:
        solver.solve(instance)  # warm-up: pool + planes + partition memo
        parallel = _solver_entry(
            f"sharded-w{workers}",
            solver,
            instance,
            seed,
            trace_memory=trace_memory,
        )
    finally:
        solver.close()
    parallel["max_utility_gap_vs"] = {
        "vs": "greedy-mono",
        "rtol": utility_gap_rtol,
    }
    # Same partition, ordered merge: worker parallelism is a pure
    # performance knob, so w4 must reproduce w1's plan bit-for-bit.
    parallel["equal_utility_vs"] = {"vs": "sharded-w1"}
    parallel["min_speedup"] = {
        "vs": "sharded-w1",
        "factor": 3.0,
        "min_cores": workers + 1,
    }
    entries.append(parallel)
    return entries


def build_report(
    preset_name: str, seed: int = 0, shards: int = 0, workers: int = 4
) -> dict:
    """Run the preset workload and return the report document."""
    try:
        preset = PRESETS[preset_name]
    except KeyError:
        raise ValueError(
            f"unknown preset {preset_name!r}; choose from {sorted(PRESETS)}"
        ) from None
    # Imported late: repro.datasets pulls numpy-heavy generator modules.
    from repro.datasets import MeetupConfig, generate_ebsn, make_city

    if preset.scale_users:
        return {
            "schema": SCHEMA,
            "schema_version": SCHEMA_VERSION,
            "preset": preset_name,
            "city": preset.city,
            "scale": preset.scale,
            "seed": seed,
            "cpu_count": os.cpu_count() or 1,
            "entries": _scale_entries(preset, seed),
        }
    if preset.service:
        return {
            "schema": SCHEMA,
            "schema_version": SCHEMA_VERSION,
            "preset": preset_name,
            "city": preset.city,
            "scale": preset.scale,
            "seed": seed,
            "cpu_count": os.cpu_count() or 1,
            "entries": _service_entries(preset, seed),
        }
    if preset.synthetic is not None:
        n_users, n_events, n_groups, n_clusters = preset.synthetic
        instance = generate_ebsn(
            MeetupConfig(
                n_users=n_users,
                n_events=n_events,
                n_groups=n_groups,
                n_clusters=n_clusters,
                seed=seed,
            )
        )
    else:
        instance = make_city(preset.city, scale=preset.scale)
    if preset.durable:
        return {
            "schema": SCHEMA,
            "schema_version": SCHEMA_VERSION,
            "preset": preset_name,
            "city": preset.city,
            "scale": preset.scale,
            "seed": seed,
            "cpu_count": os.cpu_count() or 1,
            "entries": _durable_entries(instance, preset, seed),
        }
    if preset.sharded:
        entries = _sharded_entries(
            instance,
            seed,
            shards=shards or preset.shards,
            workers=workers,
            trace_memory=preset.trace_memory,
            utility_gap_rtol=preset.utility_gap_rtol,
        )
    else:
        entries = [
            _solver_entry(
                "greedy",
                GreedySolver(seed=seed),
                instance,
                seed,
                trace_memory=preset.trace_memory,
            ),
        ]
        if preset.kernel_strategies:
            entries.extend(
                _kernel_strategy_entries(
                    instance,
                    seed,
                    preset.kernel_strategies,
                    trace_memory=preset.trace_memory,
                )
            )
        if preset.include_gap:
            entries.append(
                _solver_entry(
                    "gap",
                    GAPBasedSolver(backend="scipy"),
                    instance,
                    seed,
                    trace_memory=preset.trace_memory,
                )
            )
        entries.append(
            _iep_entry(
                instance,
                seed,
                preset.operations,
                trace_memory=preset.trace_memory,
            )
        )
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "preset": preset_name,
        "city": preset.city,
        "scale": preset.scale,
        "seed": seed,
        # The machine's core count; cross-entry speedup gates only apply
        # when the measuring machine has enough cores to show parallelism.
        "cpu_count": os.cpu_count() or 1,
        "entries": entries,
    }


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.report",
        description="Emit the BENCH_REPORT.json document CI diffs.",
    )
    parser.add_argument("--preset", default="small", choices=sorted(PRESETS))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="bench_report.json")
    parser.add_argument(
        "--shards", type=int, default=0,
        help="shard count for sharded presets (0: the preset's default)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="parallel worker count for sharded presets (default 4)",
    )
    args = parser.parse_args(argv)

    report = build_report(
        args.preset, seed=args.seed, shards=args.shards, workers=args.workers
    )
    path = write_report(report, args.out)
    print(
        format_table(
            f"Bench report: {args.preset} "
            f"({report['city']} x{report['scale']}) -> {path}",
            ["solver", "utility", "time (s)", "peak (MiB)", "cancelled"],
            [
                [
                    entry["solver"],
                    entry["utility"],
                    entry["wall_time_s"],
                    entry["peak_mib"],
                    entry["cancelled"],
                ]
                for entry in report["entries"]
            ],
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
