"""Machine-readable benchmark report for the CI regression gate.

``python -m repro.bench.report --preset small --out bench_report.json``
runs a fixed, seeded workload (both GEPC solvers plus an IEP operation
stream) and emits a stable ``BENCH_REPORT.json`` document::

    {
      "schema": "repro.bench.report",
      "schema_version": 1,
      "preset": "small", "city": "beijing", "scale": 0.5, "seed": 0,
      "entries": [
        {"solver": "greedy", "wall_time_s": ..., "peak_mib": ...,
         "utility": ..., "cancelled": 0,
         "counters": {...}, "spans": {path: {calls, seconds}}},
        ...
      ]
    }

``scripts/check_bench_regression.py`` diffs this against the committed
``results/bench_baseline.json``: wall time is gated at a slowdown factor
(absolute times vary across machines), utility at a tolerance (greedy and
the IEP stream are bit-deterministic for a fixed seed; the GAP solver gets
slack for LP-backend variation).  See ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.bench.harness import measure
from repro.bench.tables import format_table
from repro.core.gepc import GAPBasedSolver, GreedySolver
from repro.obs import recording
from repro.platform import EBSNPlatform, OperationStream

SCHEMA = "repro.bench.report"
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Preset:
    """One fixed CI workload: a scaled city plus an operation stream."""

    city: str
    scale: float
    operations: int
    include_gap: bool = True
    trace_memory: bool = True
    # Sharded presets measure greedy-mono vs ShardedSolver at worker
    # counts 1 and N instead of the greedy/gap/IEP trio.
    sharded: bool = False
    shards: int = 4


PRESETS: dict[str, Preset] = {
    "small": Preset(city="beijing", scale=0.5, operations=20),
    "medium": Preset(city="auckland", scale=0.5, operations=30),
    "large": Preset(city="vancouver", scale=0.25, operations=40),
    # The incremental-kernel hot path: full-size city, greedy + IEP stream
    # only (the GAP solver's LP would dominate and measure the LP backend,
    # not the plan kernel), pure wall-clock (tracemalloc's per-malloc hook
    # slows vectorized numpy code ~10x and would drown the signal).
    "kernel": Preset(
        city="vancouver",
        scale=1.0,
        operations=30,
        include_gap=False,
        trace_memory=False,
    ),
    # Shard-parallel scaling: monolithic greedy vs the sharded solver at
    # workers=1 and workers=N on the same partition (same shard count and
    # seed).  Pure wall-clock for the same reason as "kernel"; the
    # cross-entry speedup/utility gates ride on these entries (see
    # scripts/check_bench_regression.py and docs/scaling.md).
    "sharded": Preset(
        city="vancouver",
        scale=1.0,
        operations=0,
        include_gap=False,
        trace_memory=False,
        sharded=True,
    ),
}


def _solver_entry(
    name: str, solver, instance, seed: int, trace_memory: bool = True
) -> dict:
    with recording() as recorder:
        solution, result = measure(
            name, lambda: solver.solve(instance), trace_memory=trace_memory
        )
    return {
        "solver": name,
        "seed": seed,
        "wall_time_s": result.seconds,
        "peak_mib": result.memory_mb,
        "utility": result.utility,
        "cancelled": len(solution.cancelled),
        "counters": dict(recorder.counters),
        "spans": recorder.snapshot()["spans"],
    }


def _iep_entry(
    instance, seed: int, operations: int, trace_memory: bool = True
) -> dict:
    platform = EBSNPlatform(instance, solver=GreedySolver(seed=seed))
    platform.publish_plans()
    stream = OperationStream(seed=seed)

    def run() -> float:
        # Operations are drawn one at a time against the *current* state
        # (a pre-generated batch would go stale as repairs mutate the plan).
        for _ in range(operations):
            operation = next(
                iter(stream.mixed(platform.instance, platform.plan, 1))
            )
            platform.submit(operation)
        return platform.audit()["utility"]

    label = f"iep-mixed-{operations}"
    with recording() as recorder:
        _, result = measure(label, run, trace_memory=trace_memory)
    return {
        "solver": label,
        "seed": seed,
        "wall_time_s": result.seconds,
        "peak_mib": result.memory_mb,
        "utility": result.utility,
        "cancelled": 0,
        "counters": dict(recorder.counters),
        "spans": recorder.snapshot()["spans"],
    }


def _sharded_entries(
    instance, seed: int, shards: int, workers: int, trace_memory: bool
) -> list[dict]:
    """greedy-mono vs sharded-w1 vs sharded-wN on one fixed partition.

    The worker-N solver is warmed up with one unmeasured solve so the
    measured run sees live pool processes (fork + import cost would
    otherwise be billed to the first solve).  The cross-entry gate specs
    (``min_speedup``, ``max_utility_gap_vs``) are emitted with the
    entries so a regenerated baseline keeps its gates.
    """
    from repro.core.gepc import GreedySolver
    from repro.scale import ShardedSolver

    entries = [
        _solver_entry(
            "greedy-mono",
            GreedySolver(seed=seed),
            instance,
            seed,
            trace_memory=trace_memory,
        )
    ]
    serial = _solver_entry(
        "sharded-w1",
        ShardedSolver(shards=shards, workers=1, seed=seed),
        instance,
        seed,
        trace_memory=trace_memory,
    )
    serial["max_utility_gap_vs"] = {"vs": "greedy-mono", "rtol": 0.02}
    entries.append(serial)

    solver = ShardedSolver(shards=shards, workers=workers, seed=seed)
    try:
        solver.solve(instance)  # warm-up: start the pool off the clock
        parallel = _solver_entry(
            f"sharded-w{workers}",
            solver,
            instance,
            seed,
            trace_memory=trace_memory,
        )
    finally:
        solver.close()
    parallel["max_utility_gap_vs"] = {"vs": "greedy-mono", "rtol": 0.02}
    parallel["min_speedup"] = {
        "vs": "sharded-w1",
        "factor": 2.0,
        "min_cores": workers,
    }
    entries.append(parallel)
    return entries


def build_report(
    preset_name: str, seed: int = 0, shards: int = 0, workers: int = 4
) -> dict:
    """Run the preset workload and return the report document."""
    try:
        preset = PRESETS[preset_name]
    except KeyError:
        raise ValueError(
            f"unknown preset {preset_name!r}; choose from {sorted(PRESETS)}"
        ) from None
    # Imported late: repro.datasets pulls numpy-heavy generator modules.
    from repro.datasets import make_city

    instance = make_city(preset.city, scale=preset.scale)
    if preset.sharded:
        entries = _sharded_entries(
            instance,
            seed,
            shards=shards or preset.shards,
            workers=workers,
            trace_memory=preset.trace_memory,
        )
    else:
        entries = [
            _solver_entry(
                "greedy",
                GreedySolver(seed=seed),
                instance,
                seed,
                trace_memory=preset.trace_memory,
            ),
        ]
        if preset.include_gap:
            entries.append(
                _solver_entry(
                    "gap",
                    GAPBasedSolver(backend="scipy"),
                    instance,
                    seed,
                    trace_memory=preset.trace_memory,
                )
            )
        entries.append(
            _iep_entry(
                instance,
                seed,
                preset.operations,
                trace_memory=preset.trace_memory,
            )
        )
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "preset": preset_name,
        "city": preset.city,
        "scale": preset.scale,
        "seed": seed,
        # The machine's core count; cross-entry speedup gates only apply
        # when the measuring machine has enough cores to show parallelism.
        "cpu_count": os.cpu_count() or 1,
        "entries": entries,
    }


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.report",
        description="Emit the BENCH_REPORT.json document CI diffs.",
    )
    parser.add_argument("--preset", default="small", choices=sorted(PRESETS))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="bench_report.json")
    parser.add_argument(
        "--shards", type=int, default=0,
        help="shard count for sharded presets (0: the preset's default)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="parallel worker count for sharded presets (default 4)",
    )
    args = parser.parse_args(argv)

    report = build_report(
        args.preset, seed=args.seed, shards=args.shards, workers=args.workers
    )
    path = write_report(report, args.out)
    print(
        format_table(
            f"Bench report: {args.preset} "
            f"({report['city']} x{report['scale']}) -> {path}",
            ["solver", "utility", "time (s)", "peak (MiB)", "cancelled"],
            [
                [
                    entry["solver"],
                    entry["utility"],
                    entry["wall_time_s"],
                    entry["peak_mib"],
                    entry["cancelled"],
                ]
                for entry in report["entries"]
            ],
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
