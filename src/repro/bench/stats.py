"""Multi-run statistics for benchmark rigor.

Single-run numbers hide seed sensitivity (the paper's own Example 5 shows
greedy's user order moves utility).  :func:`summarize` turns repeated
measurements into mean / stdev / a normal-approximation 95% confidence
interval, and :func:`speedup` compares two measurement sets.
"""

from __future__ import annotations

import math
import statistics
from collections.abc import Sequence
from dataclasses import dataclass

#: two-sided 95% normal quantile.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class Stats:
    """Summary of repeated measurements."""

    n: int
    mean: float
    stdev: float
    ci_low: float
    ci_high: float
    minimum: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.mean:.4g} ± {self.ci_high - self.mean:.2g} "
            f"(n={self.n}, range {self.minimum:.4g}-{self.maximum:.4g})"
        )


def summarize(values: Sequence[float]) -> Stats:
    """Mean / stdev / 95% CI of ``values`` (needs at least one value)."""
    if not values:
        raise ValueError("cannot summarise zero measurements")
    values = [float(v) for v in values]
    mean = statistics.fmean(values)
    stdev = statistics.stdev(values) if len(values) > 1 else 0.0
    half_width = _Z95 * stdev / math.sqrt(len(values)) if len(values) > 1 else 0.0
    return Stats(
        n=len(values),
        mean=mean,
        stdev=stdev,
        ci_low=mean - half_width,
        ci_high=mean + half_width,
        minimum=min(values),
        maximum=max(values),
    )


@dataclass(frozen=True)
class Speedup:
    """Ratio of two measurement sets (baseline / candidate)."""

    baseline: Stats
    candidate: Stats

    @property
    def ratio(self) -> float:
        """How many times faster/smaller the candidate mean is."""
        if self.candidate.mean == 0:
            return math.inf
        return self.baseline.mean / self.candidate.mean

    @property
    def significant(self) -> bool:
        """Whether the 95% CIs are disjoint (a conservative check)."""
        return (
            self.baseline.ci_low > self.candidate.ci_high
            or self.candidate.ci_low > self.baseline.ci_high
        )


def speedup(
    baseline: Sequence[float], candidate: Sequence[float]
) -> Speedup:
    """Compare two measurement sets (e.g. GAP vs greedy times)."""
    return Speedup(summarize(baseline), summarize(candidate))
