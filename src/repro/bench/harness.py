"""Experiment runner shared by every table/figure benchmark.

Each benchmark measures the same triple the paper reports — total utility,
wall-clock time, and peak memory — for one (algorithm, workload) cell.
``REPRO_SCALE`` selects the workload size:

* ``quick`` (default) — minutes-scale grids for pure-Python runs,
* ``paper`` — the paper's full Table IV / Table V sizes.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.bench.memory import peak_memory_mb


@dataclass
class ExperimentResult:
    """One measured cell: value plus cost metrics."""

    label: str
    utility: float
    seconds: float
    memory_mb: float
    extra: dict[str, float] = field(default_factory=dict)


def measure(label: str, call: Callable[[], Any]) -> tuple[Any, ExperimentResult]:
    """Run ``call`` once, capturing time and allocation peak.

    ``call`` must return an object with a ``utility`` attribute (GEPC
    solutions and IEP results both do) or a plain float.
    """
    start = time.perf_counter()
    outcome, memory = peak_memory_mb(call)
    seconds = time.perf_counter() - start
    utility = outcome if isinstance(outcome, (int, float)) else outcome.utility
    return outcome, ExperimentResult(
        label=label,
        utility=float(utility),
        seconds=seconds,
        memory_mb=memory,
    )


def scale_from_env() -> str:
    """The benchmark scale: ``quick`` (default) or ``paper``."""
    scale = os.environ.get("REPRO_SCALE", "quick").lower()
    if scale not in {"quick", "paper"}:
        raise ValueError(
            f"REPRO_SCALE must be 'quick' or 'paper', got {scale!r}"
        )
    return scale
