"""Experiment runner shared by every table/figure benchmark.

Each benchmark measures the same triple the paper reports — total utility,
wall-clock time, and peak memory — for one (algorithm, workload) cell.
``REPRO_SCALE`` selects the workload size:

* ``quick`` (default) — minutes-scale grids for pure-Python runs,
* ``paper`` — the paper's full Table IV / Table V sizes.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.bench.memory import peak_memory_mb, peak_rss_delta_mb
from repro.obs import Recorder, get_recorder


@dataclass
class ExperimentResult:
    """One measured cell: value plus cost metrics."""

    label: str
    utility: float
    seconds: float
    memory_mb: float
    extra: dict[str, float] = field(default_factory=dict)


def measure(
    label: str, call: Callable[[], Any], trace_memory: bool = True
) -> tuple[Any, ExperimentResult]:
    """Run ``call`` once, capturing time and (optionally) allocation peak.

    ``call`` must return an object with a ``utility`` attribute (GEPC
    solutions and IEP results both do) or a plain float.

    Timing goes through the shared :mod:`repro.obs` recorder: with a
    recorder active the run shows up as a ``bench.<label>`` span (nesting
    the solver's own phase spans under it); otherwise a detached local
    recorder provides the monotonic timing alone.

    ``trace_memory=False`` skips the tracemalloc wrapper and falls back to
    the OS peak-RSS delta (``ru_maxrss`` growth across the call, see
    :func:`repro.bench.memory.peak_rss_delta_mb`).  Per-malloc tracing
    slows allocation-heavy vectorized code by an order of magnitude, so
    pure wall-clock workloads (the ``kernel`` and ``scale`` bench presets)
    must opt out to measure the real hot path; they still get a real —
    if coarser — memory number instead of the former hard-coded 0.0.
    """
    recorder = get_recorder()
    timer = recorder if recorder.enabled else Recorder()
    span = timer.span(f"bench.{label}")
    with span:
        if trace_memory:
            outcome, memory = peak_memory_mb(call)
        else:
            outcome, memory = peak_rss_delta_mb(call)
    recorder.gauge(f"bench.{label}.peak_mib", memory)
    utility = outcome if isinstance(outcome, (int, float)) else outcome.utility
    return outcome, ExperimentResult(
        label=label,
        utility=float(utility),
        seconds=span.elapsed,
        memory_mb=memory,
    )


def scale_from_env() -> str:
    """The benchmark scale: ``quick`` (default) or ``paper``."""
    scale = os.environ.get("REPRO_SCALE", "quick").lower()
    if scale not in {"quick", "paper"}:
        raise ValueError(
            f"REPRO_SCALE must be 'quick' or 'paper', got {scale!r}"
        )
    return scale
