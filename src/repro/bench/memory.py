"""Peak-memory measurement via ``tracemalloc``.

The paper reports per-run memory cost from system monitors on its C++
implementation.  In Python, resident-set numbers are dominated by the
interpreter, so we report *allocation peaks* around the measured call —
the faithful relative signal (GAP's LP tableaux vs greedy's arrays, heap
sizes of the three IEP repairs).
"""

from __future__ import annotations

import tracemalloc
from collections.abc import Callable
from typing import Any


def peak_memory_mb(call: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``call`` and return ``(result, peak_mb)``.

    Peak is the tracemalloc high-water mark during the call, in MiB.
    Nested use is supported (tracemalloc keeps a single global trace; the
    inner measurement simply restarts the peak counter).
    """
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        result = call()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not already_tracing:
            tracemalloc.stop()
    return result, peak / (1024.0 * 1024.0)
