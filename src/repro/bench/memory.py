"""Peak-memory measurement via ``tracemalloc``.

The paper reports per-run memory cost from system monitors on its C++
implementation.  In Python, resident-set numbers are dominated by the
interpreter, so we report *allocation peaks* around the measured call —
the faithful relative signal (GAP's LP tableaux vs greedy's arrays, heap
sizes of the three IEP repairs).
"""

from __future__ import annotations

import resource
import sys
import tracemalloc
from collections.abc import Callable
from typing import Any

# ru_maxrss units differ by platform: KiB on Linux, bytes on macOS.
_RU_MAXRSS_TO_MIB = (
    1.0 / (1024.0 * 1024.0) if sys.platform == "darwin" else 1.0 / 1024.0
)


def peak_rss_mib() -> float:
    """The process lifetime peak resident-set size, in MiB."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _RU_MAXRSS_TO_MIB


def peak_rss_delta_mb(call: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``call`` and return ``(result, rss_growth_mb)``.

    The tracemalloc-free fallback for workloads that opt out of per-malloc
    tracing: the OS high-water resident-set mark (``ru_maxrss``) sampled
    before and after the call.  ``ru_maxrss`` is a lifetime maximum and
    never decreases, so the delta is how far *this* call pushed the peak —
    zero when an earlier phase already drove RSS higher, hence a lower
    bound on the call's own footprint (clamped at 0.0, never negative).
    """
    before = peak_rss_mib()
    result = call()
    return result, max(peak_rss_mib() - before, 0.0)


def peak_memory_mb(call: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``call`` and return ``(result, peak_mb)``.

    Peak is the tracemalloc high-water mark during the call, in MiB.
    Nested use is supported (tracemalloc keeps a single global trace; the
    inner measurement simply restarts the peak counter).
    """
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        result = call()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not already_tracing:
            tracemalloc.stop()
    return result, peak / (1024.0 * 1024.0)
