"""Benchmark harness: experiment runner, paper-style tables, memory probes."""

from repro.bench.ascii_plot import ascii_chart
from repro.bench.harness import ExperimentResult, measure, scale_from_env
from repro.bench.memory import peak_memory_mb
from repro.bench.stats import Stats, speedup, summarize
from repro.bench.tables import format_series, format_table, write_csv

__all__ = [
    "ExperimentResult",
    "Stats",
    "ascii_chart",
    "format_series",
    "format_table",
    "measure",
    "peak_memory_mb",
    "scale_from_env",
    "speedup",
    "summarize",
    "write_csv",
]
