"""Sharded parallel GEPC solving.

:class:`ShardedSolver` runs the three-stage pipeline described in
``docs/scaling.md``:

1. **Partition** — :func:`repro.scale.partition.partition_instance` cuts
   the instance into ``k`` spatial shards (seeded k-means over event
   locations, users to their nearest event-cluster).
2. **Solve shards** — each shard is an independent GEPC instance solved
   by the greedy two-step solver.  With ``workers > 1`` the shards go to
   a ``concurrent.futures.ProcessPoolExecutor`` (shard instances pickle
   without their caches; see ``Instance.__getstate__``); results come
   back in shard order, so the merged plan is identical for any worker
   count.
3. **Merge + cross-shard recovery** — shard plans are *transplanted*
   into one :class:`~repro.core.plan.GlobalPlan` over the full instance
   (shards are disjoint in users *and* events and the subinstance cache
   slicing is bit-exact, so shard-local routes and costs are already the
   global ones).  Then two recovery passes run: a **rescue** retries
   shard-cancelled events against the global user pool (committing only
   if ``xi_j`` is reached, rolling back otherwise), and a **boundary
   repair** re-runs the step-2 filler over exactly the users who can
   still reach an open event their shard solve could not see
   (cross-shard events plus rescued ones — see
   :func:`_repair_candidates`).  Both passes only top up events that
   already meet their lower bound (or roll back), so every ``xi_j`` that
   held per-shard still holds globally.

Every stage emits ``repro.obs`` spans; per-shard wall time, counters,
and diagnostics are aggregated into the parent recorder even when the
shard was solved in a worker process.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.core.gepc.base import Filler, GEPCSolution, GEPCSolver
from repro.core.gepc.fill import UtilityFill
from repro.core.gepc.greedy import GreedySolver
from repro.core.model import Instance
from repro.core.plan import GlobalPlan
from repro.core.shm import PlaneManager
from repro.obs import Recorder, get_recorder, recording
from repro.scale.partition import (
    Partition,
    Shard,
    partition_instance,
    reachable_matrix,
)

#: Environment switch for the zero-copy dispatch path.  Shared-memory
#: planes are the default for parallel solves; ``REPRO_SHM=0`` falls back
#: to pickling each shard's dense slices (useful for platform triage).
SHM_ENV_VAR = "REPRO_SHM"


def _shm_enabled() -> bool:
    return os.environ.get(SHM_ENV_VAR, "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


def _solve_shard(payload: tuple[int, Instance, int | None, bool]) -> dict:
    """Solve one shard (module-level so worker processes can import it).

    Returns a compact, picklable result: per-user local plans, cancelled
    local event ids, diagnostics, and the shard's recorder counters —
    never live ``GlobalPlan``/``Instance`` objects.
    """
    index, shard_instance, seed, fill = payload
    with recording(Recorder()) as recorder:
        span = recorder.span("scale.shard_solve")
        with span:
            solution = GreedySolver(seed=seed, fill=fill).solve(shard_instance)
    return {
        "index": index,
        "plans": [
            list(events) for _, events in solution.plan
        ],
        # Exact accumulated route costs: the merge transplants these
        # instead of re-splicing every assignment, so the merged plan is
        # bit-identical to the shard state (and the merge is O(plan)).
        "route_costs": [
            solution.plan.route_cost(user)
            for user in range(shard_instance.n_users)
        ],
        "cancelled": sorted(solution.cancelled),
        "diagnostics": dict(solution.diagnostics),
        "counters": dict(recorder.counters),
        "seconds": span.elapsed,
    }


def _solve_shard_shm(
    payload: tuple[int, Instance, np.ndarray, np.ndarray, int | None, bool]
) -> dict:
    """Worker entry for the zero-copy dispatch path.

    ``parent`` arrives as plane handles (see ``Instance.__getstate__``)
    and is attached — not copied — during unpickling; the worker then
    cuts its own shard slice from the attached planes.  Slicing copies
    the same bytes ``Instance.subinstance`` copies in-process from the
    warmed parent, so the shard solve is bit-identical to the
    ``workers=1`` path.
    """
    index, parent, user_ids, event_ids, seed, fill = payload
    with recording(Recorder()) as recorder:
        recorder.count(
            "shm.planes_attached_in_worker", len(parent._plane_attachments)
        )
        with recorder.span("scale.shard_slice"):
            shard_instance = parent.subinstance(user_ids, event_ids)
    result = _solve_shard((index, shard_instance, seed, fill))
    for key, value in recorder.counters.items():
        result["counters"][key] = result["counters"].get(key, 0) + value
    # Attachments close on GC too (weakref.finalize); closing before
    # returning keeps long-lived pool workers from holding mappings.
    for attachment in parent._plane_attachments:
        attachment.close()
    return result


def _repair_candidates(
    instance: Instance,
    plan: GlobalPlan,
    partition: Partition,
    cancelled: set[int],
    rescued_events: set[int],
) -> set[int]:
    """Users worth re-filling after the merge (a subset of the fringe).

    The shard fill already exhausted every in-shard opportunity, so the
    repair only has to look at events a shard solve could not see:
    *cross-shard* ones, plus in-shard events that were cancelled by the
    shard but resurrected by the rescue pass.  Of those, only events with
    residual capacity can accept anyone — so the repair user set is
    "users with at least one reachable, open, shard-invisible event".
    Dropping the rest is free: their fill rows could only re-prove what
    the shard fill already decided.
    """
    held = np.zeros(instance.n_events, dtype=bool)
    residual = np.zeros(instance.n_events, dtype=bool)
    for event in range(instance.n_events):
        if event in cancelled:
            continue
        spec = instance.events[event]
        count = plan.attendance(event)
        held[event] = (count >= spec.lower and count > 0) or spec.lower == 0
        residual[event] = held[event] and count < spec.upper
    if not residual.any():
        return set()
    invisible = partition.event_shard[None, :] != partition.user_shard[:, None]
    if rescued_events:
        rescued_mask = np.zeros(instance.n_events, dtype=bool)
        rescued_mask[sorted(rescued_events)] = True
        invisible = invisible | rescued_mask[None, :]
    candidates = reachable_matrix(instance) & residual[None, :] & invisible
    return set(np.flatnonzero(candidates.any(axis=1)).tolist())


class ShardedSolver(GEPCSolver):
    """Solve a GEPC instance as ``k`` spatial shards, optionally in parallel.

    Parameters
    ----------
    shards:
        Target shard count ``k`` (clamped to the event count; empty
        clusters are dropped).  ``shards=1`` delegates to the plain
        greedy solver and produces its bit-identical plan.
    workers:
        Process-pool width for the shard-solve stage.  ``workers=1``
        solves in-process; any value produces the identical merged plan
        (results are merged in shard order, not completion order).
    seed:
        Seed for both the partitioner's k-means and every shard's greedy
        visiting order.
    fill:
        Whether shards run their own step-2 filler (ablation hook,
        mirrors :class:`GreedySolver`).
    filler:
        The boundary-repair filler re-run on fringe users after the
        merge (defaults to :class:`UtilityFill`).
    share_planes:
        Whether parallel solves publish the parent's dense planes into
        shared memory and dispatch shards as (handles, id arrays) —
        zero-copy — instead of pickling each shard's sliced planes.
        ``None`` (default) reads the ``REPRO_SHM`` environment switch
        (on unless set to ``0``/``false``/``off``/``no``).  The merged
        plan is bit-identical either way.

    The process pool is created lazily on the first parallel solve and
    reused across solves; call :meth:`close` (or use the solver as a
    context manager) to release the workers.  Shared-memory segments
    live only for the duration of one parallel solve: they are released
    in a ``finally`` even when a worker dies mid-solve, and a broken
    pool is torn down and rebuilt on the next solve.
    """

    name = "sharded"

    def __init__(
        self,
        shards: int = 4,
        workers: int = 1,
        seed: int | None = 0,
        fill: bool = True,
        filler: Filler | None = None,
        share_planes: bool | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._shards = shards
        self._workers = workers
        self._seed = seed
        self._fill = fill
        self._filler = filler or UtilityFill()
        self._share_planes = share_planes
        self._pool: ProcessPoolExecutor | None = None  # guarded-by: _pool_lock
        self._pool_lock = threading.Lock()
        # Partition memo for repeated solves of the *same* instance
        # object: partitioning is deterministic in (instance, shards,
        # seed), so the cut can be reused — it is pure serial time on
        # every solve otherwise.  Held via weakref so the solver never
        # keeps a dead instance (and its planes) alive.
        self._partition_ref: "weakref.ref[Instance] | None" = None
        self._partition_cached: Partition | None = None

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #

    def _executor(self, width: int) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                kwargs = {}
                if "fork" in multiprocessing.get_all_start_methods():
                    # Fork inherits the imported package: no re-import cost
                    # per worker, and the cheapest start-up on Linux CI
                    # runners.
                    kwargs["mp_context"] = multiprocessing.get_context("fork")
                self._pool = ProcessPoolExecutor(max_workers=width, **kwargs)
            return self._pool

    def close(self) -> None:
        """Shut down the worker pool (no-op when none was started)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _reset_broken_pool(self) -> None:
        """Discard a pool whose worker died; the next solve rebuilds it.

        A ``BrokenProcessPool`` executor rejects every future submission,
        so keeping it would poison all later solves through this solver.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            # Workers are already gone; don't block on them.
            pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ShardedSolver":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #

    def solve(self, instance: Instance) -> GEPCSolution:
        obs = get_recorder()
        if self._shards == 1 or instance.n_events <= 1:
            # One shard is the monolithic problem: delegate for a
            # bit-identical plan (the k=1 equivalence contract).
            solution = GreedySolver(
                seed=self._seed, fill=self._fill
            ).solve(instance)
            solution.solver = self.name
            solution.diagnostics.update(
                {"shards": 1.0, "workers": 1.0, "fringe_users": 0.0,
                 "repair_added": 0.0}
            )
            return solution

        # Warm the dense planes before partitioning so every shard slice
        # is a bit-exact cut of the same arrays — and so the zero-copy
        # path has planes to publish.  (The partitioner would warm the
        # user-event block anyway; this makes the rest explicit.)
        instance.warm_planes()
        partition = self._partition_for(instance)
        results = self._solve_shards(instance, partition.shards, obs)

        with obs.span("scale.merge"):
            plan = GlobalPlan(instance)
            cancelled: set[int] = set()
            diagnostics: dict[str, float] = {}
            for shard, result in zip(partition.shards, results):
                for local_user, events in enumerate(result["plans"]):
                    global_user = int(shard.user_ids[local_user])
                    # Transplant instead of plan.add: shards are disjoint
                    # in users and events and subinstance slicing is
                    # bit-exact, so the shard-local routes (start-sorted,
                    # start times preserved by the id remap) and their
                    # accumulated costs are already the global ones.
                    route = [int(shard.event_ids[e]) for e in events]
                    # repro-lint: ignore[RL001] bit-exact shard transplant
                    plan._plans[global_user] = route
                    plan._route_costs[global_user] = result[  # repro-lint: ignore[RL001] transplant, see above
                        "route_costs"
                    ][local_user]
                    for event in route:
                        plan._attendance[event] += 1  # repro-lint: ignore[RL001] transplant, see above
                        plan._attendee_sets[event].add(global_user)  # repro-lint: ignore[RL001] transplant, see above
                cancelled.update(
                    int(shard.event_ids[e]) for e in result["cancelled"]
                )
                for key, value in result["diagnostics"].items():
                    diagnostics[key] = diagnostics.get(key, 0.0) + value
                for key, value in result["counters"].items():
                    obs.count(key, value)
                obs.gauge(
                    f"scale.shard.{shard.index}.seconds", result["seconds"]
                )

        rescued = 0
        rescued_events: set[int] = set()
        if self._fill and cancelled:
            with obs.span("scale.rescue_cancelled"):
                before = set(cancelled)
                rescued = self._rescue_cancelled(instance, plan, cancelled)
                rescued_events = before - cancelled

        repaired = 0
        if self._fill:
            repair_users = _repair_candidates(
                instance, plan, partition, cancelled, rescued_events
            )
            if repair_users:
                with obs.span("scale.boundary_repair"):
                    repaired = self._filler.fill(
                        instance,
                        plan,
                        excluded_events=cancelled,
                        only_users=repair_users,
                    )
        obs.count("scale.solves")
        obs.count("scale.rescue_added", rescued)
        obs.count("scale.repair_added", repaired)
        diagnostics.update(
            {
                "shards": float(partition.n_shards),
                "workers": float(self._workers),
                "fringe_users": float(len(partition.fringe_users)),
                "rescue_added": float(rescued),
                "repair_added": float(repaired),
            }
        )
        return GEPCSolution(
            plan,
            cancelled=cancelled,
            solver=self.name,
            diagnostics=diagnostics,
        )

    def _rescue_cancelled(
        self, instance: Instance, plan: GlobalPlan, cancelled: set[int]
    ) -> int:
        """Retry shard-cancelled events against the *global* user pool.

        A shard cancels an event when its own users cannot meet the
        event's ``xi`` lower bound — but users from other shards may well
        cover it (the monolithic solver would have).  For each cancelled
        event, in ascending id order, users are tried in descending
        utility (ties by id) and committed only if the lower bound is
        reached; otherwise every tentative add is rolled back, so a
        still-deficient event stays cancelled and attendance-free.

        Returns the number of assignments committed.
        """
        rescued = 0
        spatial = instance.candidate_index
        for event in sorted(cancelled):
            spec = instance.events[event]
            # Under the tiled backend, only this event's spatial candidates
            # can ever pass can_attend's budget check (the candidate test
            # is the same 2d+fee bound), so restricting the pool skips no
            # user the dense scan could have added — the committed adds,
            # and their order, are identical.
            pool = (
                range(instance.n_users)
                if spatial is None
                else spatial.candidate_users(event).tolist()
            )
            order = sorted(
                pool,
                key=lambda u: (-float(instance.utility[u, event]), u),
            )
            added: list[int] = []
            for user in order:
                if plan.attendance(event) >= spec.upper:
                    break
                if instance.utility[user, event] <= 0.0:
                    break
                if plan.can_attend(user, event):
                    plan.add(user, event)
                    added.append(user)
            if len(added) >= spec.lower:
                cancelled.discard(event)
                rescued += len(added)
            else:
                for user in added:
                    plan.remove(user, event)
        return rescued

    def _solve_shards(
        self, instance: Instance, shards: list[Shard], obs: Recorder
    ) -> list[dict]:
        width = min(self._workers, len(shards))
        with obs.span("scale.solve_shards"):
            if width <= 1:
                return [
                    _solve_shard(
                        (shard.index, shard.instance, self._seed, self._fill)
                    )
                    for shard in shards
                ]
            share = (
                _shm_enabled()
                if self._share_planes is None
                else self._share_planes
            )
            if not share:
                payloads = [
                    (shard.index, shard.instance, self._seed, self._fill)
                    for shard in shards
                ]
                return self._map_pool(width, _solve_shard, payloads)
            # Zero-copy dispatch: publish the parent planes once, ship
            # only (handles, shard id arrays).  Segments are released in
            # the finally — also when a worker dies mid-solve — so no
            # /dev/shm entry can outlive the solve.
            manager = PlaneManager()
            try:
                instance.share_planes(manager)
                payloads_shm = [
                    (
                        shard.index,
                        instance,
                        shard.user_ids,
                        shard.event_ids,
                        self._seed,
                        self._fill,
                    )
                    for shard in shards
                ]
                return self._map_pool(width, _solve_shard_shm, payloads_shm)
            finally:
                instance.unshare_planes()
                manager.release()

    def _map_pool(self, width: int, worker, payloads: list) -> list[dict]:
        # map() preserves submission order: merge order (and thus the
        # final plan) is independent of completion order.
        try:
            return list(self._executor(width).map(worker, payloads))
        except BrokenProcessPool:
            self._reset_broken_pool()
            raise

    def _partition_for(self, instance: Instance) -> Partition:
        """The (memoized) partition of ``instance``.

        Safe because partitioning is a pure function of
        ``(instance, shards, seed)`` and instances are immutable by
        convention — the IEP operations produce *new* instances, which
        miss the identity check and re-partition.
        """
        cached = (
            self._partition_cached
            if self._partition_ref is not None
            and self._partition_ref() is instance
            else None
        )
        if cached is None:
            cached = partition_instance(instance, self._shards, self._seed or 0)
            self._partition_ref = weakref.ref(instance)
            self._partition_cached = cached
        return cached

    def partition(self, instance: Instance) -> Partition:
        """The partition :meth:`solve` would use (for inspection/tests)."""
        return self._partition_for(instance)
