"""Scaling subsystem: spatial sharding, parallel solve, batched serving.

See ``docs/scaling.md`` for the design.  The three public pieces:

* :func:`partition_instance` — deterministic geographic partitioner.
* :class:`ShardedSolver` — GEPC solver over ``k`` shards, optionally on
  a process pool, with post-merge boundary repair.
* :class:`BatchedPlatform` — thread-safe, coalescing operation front-end
  over :class:`~repro.platform.service.EBSNPlatform`.
"""

from repro.scale.batched import (
    BatchedPlatform,
    BatchRejectionError,
    BatchResult,
    PlatformClosedError,
    coalesce_operations,
)
from repro.scale.partition import (
    Partition,
    Shard,
    partition_instance,
    reachable_matrix,
)
from repro.scale.sharded import ShardedSolver

__all__ = [
    "BatchRejectionError",
    "BatchResult",
    "BatchedPlatform",
    "Partition",
    "PlatformClosedError",
    "Shard",
    "ShardedSolver",
    "coalesce_operations",
    "partition_instance",
    "reachable_matrix",
]
