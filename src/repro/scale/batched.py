"""Concurrent operation serving: a batching front-end over the platform.

:class:`EBSNPlatform` applies atomic operations strictly one at a time on
the caller's thread.  :class:`BatchedPlatform` makes that safe and cheap
under concurrent traffic:

* **Thread-safe queue** — any thread may :meth:`enqueue` operations;
  reads (:meth:`plan_for`, :meth:`attendees_of`, :meth:`snapshot`) take
  the state lock, so a reader never observes a half-applied batch.
* **Coalescing** — queued operations targeting the same entity fold
  before applying (two ``EtaDecrease`` on one event become the tighter
  one; ``TimeChange``/``LocationChange``/``UtilityChange``/
  ``BudgetChange`` are last-write-wins; see :func:`coalesce_operations`
  for the full rule table).  The engine then repairs once per surviving
  operation instead of once per submission.
* **One audit boundary per batch** — :meth:`flush` applies the whole
  coalesced batch under a single lock and runs ``check_plan`` once at
  the end, not per operation.
* **Backpressure stats** — queue depth, coalesce/fold counts, rejected
  operations, and forced flushes are mirrored to ``repro.obs`` (the
  recorder active when the platform was constructed, so worker threads
  report into the owner's trace) and exposed via :meth:`stats`.

The applied-operation log (:attr:`applied_log`) is the platform's ground
truth: serially replaying it from the published plan reproduces the
final state exactly — the invariant the concurrency tests pin.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.constraints import check_plan
from repro.core.gepc.base import GEPCSolver
from repro.core.iep.operations import (
    AtomicOperation,
    BudgetChange,
    EtaDecrease,
    EtaIncrease,
    LocationChange,
    NewEvent,
    TimeChange,
    UtilityChange,
    XiDecrease,
    XiIncrease,
)
from repro.core.model import Instance
from repro.core.plan import GlobalPlan
from repro.obs import get_recorder
from repro.platform.service import EBSNPlatform, PlatformLogEntry


def coalesce_operations(
    operations: list[AtomicOperation],
) -> tuple[list[AtomicOperation], int]:
    """Fold same-target operations; returns ``(survivors, folded_count)``.

    Rules (keyed by operation type + target entity, first-occurrence
    order preserved):

    ========================  =======================================
    operations on one target  fold result
    ========================  =======================================
    ``EtaDecrease``           tightest (minimum) new upper bound
    ``EtaIncrease``           loosest (maximum) new upper bound
    ``XiIncrease``            tightest (maximum) new lower bound
    ``XiDecrease``            loosest (minimum) new lower bound
    ``TimeChange``            last write wins
    ``LocationChange``        last write wins
    ``UtilityChange``         last write wins (per user-event pair)
    ``BudgetChange``          last write wins (per user)
    ``NewEvent``              never folded
    ========================  =======================================

    Folding is the stream's composition: applying the folded operation
    yields the same instance as applying the sequence (bounds compose to
    their extremum, attribute writes to the last value).  Different
    operation *types* on the same entity are never folded into each
    other; they stay distinct operations in first-occurrence order.
    """
    slots: dict[tuple, int] = {}
    survivors: list[AtomicOperation | None] = []
    folded = 0
    for operation in operations:
        key = _coalesce_key(operation, position=len(survivors))
        slot = slots.get(key)
        if slot is None:
            slots[key] = len(survivors)
            survivors.append(operation)
            continue
        survivors[slot] = _fold(survivors[slot], operation)
        folded += 1
    return [op for op in survivors if op is not None], folded


def _coalesce_key(operation: AtomicOperation, position: int) -> tuple:
    if isinstance(operation, (EtaDecrease, EtaIncrease)):
        return (type(operation).__name__, operation.event)
    if isinstance(operation, (XiIncrease, XiDecrease)):
        return (type(operation).__name__, operation.event)
    if isinstance(operation, (TimeChange, LocationChange)):
        return (type(operation).__name__, operation.event)
    if isinstance(operation, UtilityChange):
        return ("UtilityChange", operation.user, operation.event)
    if isinstance(operation, BudgetChange):
        return ("BudgetChange", operation.user)
    # NewEvent (and any unknown operation): unique slot, never folded.
    return ("__unique__", position)


def _fold(
    first: AtomicOperation, second: AtomicOperation
) -> AtomicOperation:
    if isinstance(first, EtaDecrease):
        return EtaDecrease(
            first.event, min(first.new_upper, second.new_upper)
        )
    if isinstance(first, EtaIncrease):
        return EtaIncrease(
            first.event, max(first.new_upper, second.new_upper)
        )
    if isinstance(first, XiIncrease):
        return XiIncrease(
            first.event, max(first.new_lower, second.new_lower)
        )
    if isinstance(first, XiDecrease):
        return XiDecrease(
            first.event, min(first.new_lower, second.new_lower)
        )
    # Attribute writes: last wins.
    return second


@dataclass
class BatchResult:
    """Outcome of one :meth:`BatchedPlatform.flush`."""

    submitted: int = 0
    folded: int = 0
    applied: list[PlatformLogEntry] = field(default_factory=list)
    rejected: list[tuple[AtomicOperation, str]] = field(default_factory=list)
    violations: int = 0
    utility: float = 0.0

    @property
    def ok(self) -> bool:
        return self.violations == 0 and not self.rejected


class PlatformClosedError(RuntimeError):
    """An operation was submitted to a closed :class:`BatchedPlatform`.

    Raised by :meth:`BatchedPlatform.enqueue` after :meth:`close` — a
    clear, immediate refusal instead of silently queueing work that no
    flush will ever apply (the shutdown deadlock the service layer
    must never hit).
    """


class BatchRejectionError(RuntimeError):
    """One or more operations in a flushed batch were rejected.

    Raised *after* the rest of the batch has been applied (rejections
    never roll back or block their batch-mates); ``.result`` carries the
    full :class:`BatchResult` including every ``(operation, reason)``
    pair, so callers can inspect exactly which submissions failed.
    """

    def __init__(self, result: BatchResult):
        reasons = "; ".join(
            f"{type(op).__name__}: {reason}"
            for op, reason in result.rejected[:3]
        )
        more = len(result.rejected) - 3
        if more > 0:
            reasons += f"; and {more} more"
        super().__init__(
            f"{len(result.rejected)} of {result.submitted} batched "
            f"operation(s) rejected ({reasons})"
        )
        self.result = result


class BatchedPlatform:
    """A thread-safe, batch-coalescing front-end over :class:`EBSNPlatform`.

    Operations are enqueued from any thread; :meth:`flush` (called
    explicitly, or automatically by the enqueueing thread once the queue
    reaches ``max_pending``) coalesces and applies them under one lock
    with a single ``check_plan`` boundary.
    """

    def __init__(
        self,
        instance: Instance | None = None,
        solver: GEPCSolver | None = None,
        max_pending: int = 64,
        platform: object | None = None,
        raise_on_reject: bool = False,
    ) -> None:
        """Front a platform with a coalescing queue.

        Either pass ``instance`` (an :class:`EBSNPlatform` is built
        internally) or ``platform`` (any object with the platform
        surface — notably :class:`repro.platform.durable.DurablePlatform`
        to get WAL + snapshots under batched traffic).

        ``raise_on_reject=True`` makes :meth:`flush` raise
        :class:`BatchRejectionError` whenever a batch had rejected
        operations — for callers that treat a silent drop as a bug
        rather than expected staleness.
        """
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if (instance is None) == (platform is None):
            raise ValueError(
                "pass exactly one of `instance` or `platform`"
            )
        if platform is None:
            platform = EBSNPlatform(instance, solver=solver)
        elif solver is not None:
            raise ValueError("`solver` only applies with `instance`")
        self._platform = platform  # guarded-by: _state_lock
        self._raise_on_reject = raise_on_reject
        self._max_pending = max_pending
        self._pending: list[AtomicOperation] = []  # guarded-by: _queue_lock
        self._closed = False  # guarded-by: _queue_lock
        self._queue_lock = threading.Lock()
        # Reentrant: a reader helper may be called while flushing.
        self._state_lock = threading.RLock()
        self._applied_log: list[AtomicOperation] = []  # guarded-by: _state_lock
        self._stats = {  # guarded-by: _queue_lock
            "enqueued": 0,
            "folded": 0,
            "applied": 0,
            "rejected": 0,
            "flushes": 0,
            "forced_flushes": 0,
            "max_queue_depth": 0,
        }
        # Captured once so counters from worker threads land in the
        # recorder of the context that owns the platform (ContextVars do
        # not propagate into threads started outside that context).
        self._obs = get_recorder()

    # ------------------------------------------------------------------ #
    # Reads (all under the state lock: no torn reads)
    # ------------------------------------------------------------------ #

    @property
    def instance(self) -> Instance:
        with self._state_lock:
            return self._platform.instance

    @property
    def plan(self) -> GlobalPlan:
        with self._state_lock:
            return self._platform.plan

    @property
    def log(self) -> list[PlatformLogEntry]:
        with self._state_lock:
            return self._platform.log

    @property
    def applied_log(self) -> list[AtomicOperation]:
        """Coalesced operations actually applied, in apply order.

        Serial replay of this log from the published plan reproduces the
        current state exactly.
        """
        with self._state_lock:
            return list(self._applied_log)

    def plan_for(self, user: int) -> list[int]:
        with self._state_lock:
            return self._platform.plan_for(user)

    def attendees_of(self, event: int) -> list[int]:
        with self._state_lock:
            return self._platform.attendees_of(event)

    def snapshot(self) -> dict[str, float]:
        """A consistent audit snapshot (utility, violations, queue depth).

        Taken under the state lock: the numbers all describe one single
        post-batch state, never a half-applied one.
        """
        with self._state_lock:
            numbers = self._platform.audit()
        with self._queue_lock:
            numbers["queue_depth"] = float(len(self._pending))
        return numbers

    def stats(self) -> dict[str, int]:
        """Backpressure and coalescing counters (a copy)."""
        with self._queue_lock:
            return dict(self._stats)

    def queue_depth(self) -> int:
        with self._queue_lock:
            return len(self._pending)

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #

    def publish_plans(self) -> float:
        with self._state_lock:
            return self._platform.publish_plans()

    def enqueue(self, operation: AtomicOperation) -> int:
        """Queue one operation; returns the queue depth after enqueue.

        Reaching ``max_pending`` makes the enqueueing thread pay for the
        flush (backpressure: producers slow down instead of the queue
        growing without bound).
        """
        with self._queue_lock:
            if self._closed:
                raise PlatformClosedError(
                    "BatchedPlatform is closed; the final batch has "
                    "already been flushed and no further operations are "
                    "accepted"
                )
            self._pending.append(operation)
            depth = len(self._pending)
            self._stats["enqueued"] += 1
            self._stats["max_queue_depth"] = max(
                self._stats["max_queue_depth"], depth
            )
            forced = depth >= self._max_pending
            if forced:
                self._stats["forced_flushes"] += 1
        self._obs.count("batched.enqueued")
        self._obs.gauge("batched.queue_depth", float(depth))
        if forced:
            self._obs.count("batched.forced_flushes")
            self.flush()
        return depth

    def flush(self) -> BatchResult:
        """Coalesce and apply everything queued; one audit boundary.

        Returns an empty :class:`BatchResult` when nothing was queued.
        Invalid operations (stale against the batch's evolving instance)
        are rejected and recorded, never partially applied — and never
        silently swallowed: every failure is in ``result.rejected`` with
        its reason, mirrored to the ``batched.rejected`` counter, and
        with ``raise_on_reject`` it escalates to
        :class:`BatchRejectionError` once the batch completes.
        """
        with self._state_lock:
            with self._queue_lock:
                batch, self._pending = self._pending, []
            result = BatchResult(submitted=len(batch))
            if not batch:
                return result
            operations, result.folded = coalesce_operations(batch)
            for operation in operations:
                try:
                    entry = self._platform.submit(operation)
                except (ValueError, IndexError, KeyError) as exc:
                    # Stale or malformed against the batch's evolving
                    # instance (validate() raises IndexError for ids past
                    # the current event/user range).
                    result.rejected.append((operation, str(exc)))
                    continue
                result.applied.append(entry)
                self._applied_log.append(operation)
            violations = check_plan(
                self._platform.instance, self._platform.plan
            )
            result.violations = len(violations)
            result.utility = (
                result.applied[-1].utility_after
                if result.applied
                else self._platform.audit()["utility"]
            )
            with self._queue_lock:
                self._stats["folded"] += result.folded
                self._stats["applied"] += len(result.applied)
                self._stats["rejected"] += len(result.rejected)
                self._stats["flushes"] += 1
        self._obs.count("batched.flushes")
        self._obs.count("batched.folded", result.folded)
        self._obs.count("batched.applied", len(result.applied))
        self._obs.count("batched.rejected", len(result.rejected))
        self._obs.count("batched.violations", result.violations)
        if self._raise_on_reject and result.rejected:
            raise BatchRejectionError(result)
        return result

    def drain(self) -> BatchResult:
        """Flush until the queue is empty (other threads may keep adding;
        drain stops at the first empty observation)."""
        result = self.flush()
        while self.queue_depth():
            follow_up = self.flush()
            result.submitted += follow_up.submitted
            result.folded += follow_up.folded
            result.applied.extend(follow_up.applied)
            result.rejected.extend(follow_up.rejected)
            result.violations = follow_up.violations
            result.utility = follow_up.utility
        return result

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #

    @property
    def closed(self) -> bool:
        with self._queue_lock:
            return self._closed

    def close(self) -> BatchResult:
        """Flush the pending batch exactly once, then close the platform.

        Shutdown contract (the service layer depends on each clause):

        * the pending batch is flushed **exactly once** — concurrent or
          repeated ``close()`` calls return an empty :class:`BatchResult`
          without re-flushing;
        * operations enqueued after close raise
          :class:`PlatformClosedError` immediately (never queued, never
          deadlocked on a queue nothing will drain);
        * an inner platform with its own ``close()`` (notably
          :class:`repro.platform.durable.DurablePlatform`, whose close
          seals the WAL) is closed after the final flush, and only once;
        * idempotent — closing a closed platform is a no-op.

        Returns the final flush's :class:`BatchResult` (empty when the
        queue was empty or the platform was already closed).
        """
        with self._queue_lock:
            already_closed = self._closed
            self._closed = True
        if already_closed:
            return BatchResult()
        # The closed flag is set under the queue lock, so no enqueue can
        # append after this point: one flush empties the queue for good.
        result = self.flush()
        with self._state_lock:
            inner_close = getattr(self._platform, "close", None)
            if inner_close is not None:
                inner_close()
        self._obs.count("batched.closes")
        return result

    def __enter__(self) -> "BatchedPlatform":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
