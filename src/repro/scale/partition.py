"""Geographic partitioning of an EBSN instance into spatial shards.

City-shaped workloads (the paper's Table IV datasets) are spatially
clustered: users mostly attend events in their own district.  The
partitioner exploits that — a deterministic seeded k-means over **event
locations** yields ``k`` event clusters; every event joins its nearest
centroid's shard and every user joins the shard of their nearest
event-cluster.  Each shard becomes an independent, re-indexed
:class:`~repro.core.model.Instance` (via ``Instance.subinstance``, which
slices any warmed caches bit-exactly) that a worker process can solve in
isolation.

The cut is lossy at shard boundaries: a user may be able to reach events
assigned to other shards.  The partitioner therefore computes a
**budget-aware fringe** — users with at least one *reachable* event
outside their home shard, where reachable means positive utility and a
singleton round trip within budget (``2 * d(u, e) + fee_e <= B_u``).
The sharded solver re-runs the step-2 filler on exactly these users after
merging, so no cross-shard utility is silently unreachable (see
``docs/scaling.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.model import Instance
from repro.core.tolerances import BUDGET_TOL
from repro.obs import get_recorder


@dataclass(frozen=True)
class Shard:
    """One spatial shard: global id maps plus the re-indexed sub-instance.

    ``user_ids[local]``/``event_ids[local]`` give the global id of a
    shard-local user/event; both arrays are strictly increasing, so the
    local order mirrors the global order.
    """

    index: int
    user_ids: np.ndarray
    event_ids: np.ndarray
    instance: Instance

    @property
    def n_users(self) -> int:
        return int(self.user_ids.size)

    @property
    def n_events(self) -> int:
        return int(self.event_ids.size)


@dataclass(frozen=True)
class Partition:
    """A complete spatial partition of one instance.

    Every user and every event belongs to exactly one shard;
    ``fringe_users`` are the (global) users whose reachable events span
    more than their home shard — the set the post-merge boundary repair
    re-fills.
    """

    k: int
    seed: int
    event_shard: np.ndarray
    user_shard: np.ndarray
    centroids: np.ndarray
    shards: list[Shard] = field(default_factory=list)
    fringe_users: frozenset[int] = frozenset()

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_of_user(self, user: int) -> int:
        return int(self.user_shard[user])

    def shard_of_event(self, event: int) -> int:
        return int(self.event_shard[event])


def _kmeans(
    points: np.ndarray, k: int, seed: int, max_iter: int = 50
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic seeded k-means (k-means++ init, Lloyd iterations).

    Returns ``(labels, centroids)``.  Ties and degenerate clusters are
    resolved deterministically: argmin picks the lowest index, and an
    emptied cluster keeps its previous centroid.
    """
    rng = np.random.default_rng(seed)
    n = points.shape[0]
    centroids = np.empty((k, 2), dtype=float)
    first = int(rng.integers(n))
    centroids[0] = points[first]
    closest = ((points - centroids[0]) ** 2).sum(axis=1)
    for c in range(1, k):
        total = closest.sum()
        if total <= 0.0:
            # All points coincide with a chosen centroid; reuse the first.
            centroids[c:] = centroids[0]
            break
        probabilities = closest / total
        pick = int(rng.choice(n, p=probabilities))
        centroids[c] = points[pick]
        closest = np.minimum(
            closest, ((points - centroids[c]) ** 2).sum(axis=1)
        )
    labels = np.zeros(n, dtype=int)
    for _ in range(max_iter):
        squared = (
            (points[:, None, :] - centroids[None, :, :]) ** 2
        ).sum(axis=2)
        labels = squared.argmin(axis=1)
        updated = centroids.copy()
        for c in range(k):
            members = labels == c
            if members.any():
                updated[c] = points[members].mean(axis=0)
        if np.allclose(updated, centroids):
            break
        centroids = updated
    return labels, centroids


def reachable_matrix(instance: Instance) -> np.ndarray:
    """Boolean ``n x m``: user could attend the event *as a singleton plan*.

    Positive utility and the lone round trip (plus admission fee) within
    budget.  This is the budget-aware notion of "the user can reach the
    event" the fringe computation uses — any assignment a solver could
    ever make implies singleton reachability, so the fringe over-approxi-
    mates (never misses) cross-shard opportunities.
    """
    candidates = instance.candidate_index
    if candidates is not None:
        # Tiled backend: the spatial index already holds exactly the
        # ``within`` booleans (its refinement evaluates the identical
        # ``2d + fee <= B + tol`` comparison), so scatter the candidate
        # sets instead of materialising the full distance plane.
        within = np.zeros(
            (instance.n_users, instance.n_events), dtype=bool
        )
        for event in range(instance.n_events):
            within[candidates.candidate_users(event), event] = True
        return (instance.utility > 0.0) & within
    budgets = np.array([u.budget for u in instance.users], dtype=float)
    round_trip = (
        2.0 * instance.distances.user_event_matrix  # repro-lint: ignore[RL008] dense branch reuses the already-materialised oracle plane
        + instance.fee_vector
    )
    within = round_trip <= budgets[:, None] + BUDGET_TOL
    return (instance.utility > 0.0) & within


def partition_instance(
    instance: Instance, k: int, seed: int = 0
) -> Partition:
    """Split ``instance`` into at most ``k`` spatial shards.

    Deterministic for a fixed ``(instance, k, seed)``.  ``k`` is clamped
    to the event count; clusters that end up with no events are dropped
    (the effective shard count may be below ``k``).
    """
    obs = get_recorder()
    with obs.span("scale.partition"):
        k = max(1, min(k, instance.n_events)) if instance.n_events else 1
        event_points = np.array(
            [(e.location.x, e.location.y) for e in instance.events],
            dtype=float,
        )
        user_points = np.array(
            [(u.location.x, u.location.y) for u in instance.users],
            dtype=float,
        )

        if instance.n_events == 0 or k == 1:
            event_labels = np.zeros(instance.n_events, dtype=int)
            centroids = (
                event_points.mean(axis=0, keepdims=True)
                if instance.n_events
                else np.zeros((1, 2))
            )
        else:
            event_labels, centroids = _kmeans(event_points, k, seed)

        # Drop empty clusters and re-index shard ids densely.
        used = np.unique(event_labels)
        remap = {int(old): new for new, old in enumerate(used)}
        event_shard = np.array(
            [remap[int(label)] for label in event_labels], dtype=int
        )
        centroids = centroids[used]
        n_shards = len(used)

        # Users join the shard of their nearest event-cluster centroid.
        if instance.n_users and n_shards:
            user_squared = (
                (user_points[:, None, :] - centroids[None, :, :]) ** 2
            ).sum(axis=2)
            user_shard = user_squared.argmin(axis=1)
        else:
            user_shard = np.zeros(instance.n_users, dtype=int)

        # Budget-aware fringe: reachable events outside the home shard.
        fringe: frozenset[int] = frozenset()
        if n_shards > 1 and instance.n_users and instance.n_events:
            reach = reachable_matrix(instance)
            onehot = np.zeros((instance.n_events, n_shards), dtype=bool)
            onehot[np.arange(instance.n_events), event_shard] = True
            per_shard = reach.astype(np.int32) @ onehot.astype(np.int32)
            per_shard[np.arange(instance.n_users), user_shard] = 0
            fringe = frozenset(np.flatnonzero(per_shard.any(axis=1)).tolist())

        shards = []
        for s in range(n_shards):
            shard_users = np.flatnonzero(user_shard == s)
            shard_events = np.flatnonzero(event_shard == s)
            shards.append(
                Shard(
                    index=s,
                    user_ids=shard_users,
                    event_ids=shard_events,
                    instance=instance.subinstance(shard_users, shard_events),
                )
            )
    obs.count("scale.partitions")
    obs.gauge("scale.partition.shards", float(len(shards)))
    obs.gauge("scale.partition.fringe_users", float(len(fringe)))
    return Partition(
        k=k,
        seed=seed,
        event_shard=event_shard,
        user_shard=user_shard,
        centroids=centroids,
        shards=shards,
        fringe_users=fringe,
    )
