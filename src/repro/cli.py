"""Command-line interface: solve cities and run quick experiments.

Installed as ``repro-gepc``::

    repro-gepc solve --city beijing --solver greedy
    repro-gepc solve --city auckland --solver gap --scale 0.5
    repro-gepc solve --city vancouver --shards 4 --workers 4
    repro-gepc simulate --city auckland --batch 8 --operations 40
    repro-gepc fuzz --seeds 10 --sharded
    repro-gepc compare --city beijing
    repro-gepc stats --city vancouver
    repro-gepc export --city beijing --out /tmp/beijing
    repro-gepc simulate --city auckland --scale 0.5 --operations 20
    repro-gepc simulate --city auckland --durable /tmp/auckland-state
    repro-gepc replay /tmp/beijing /tmp/workload.json
    repro-gepc fuzz --seeds 25 --operations 12
    repro-gepc fuzz --durable --seeds 10
    repro-gepc fuzz --service --seeds 10
    repro-gepc recover /tmp/auckland-state
    repro-gepc serve --root /tmp/planning-state --port 8414

Every command accepts ``--trace`` (per-phase timing/counter table on
stderr) and ``--trace-json PATH`` (machine-readable recorder snapshot);
see ``docs/observability.md``.  Setting ``REPRO_SHADOW_CHECKS=1`` runs
any command with shadow-checked mutations (every plan mutation and IEP
apply is audited against a from-scratch recompute; see
``docs/correctness.md``).
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import measure
from repro.bench.tables import format_table
from repro.check import (
    CrashFuzzConfig,
    FuzzConfig,
    maybe_shadow_checks,
    run_crash_fuzz,
    run_fuzz,
)
from repro.core.constraints import check_plan
from repro.core.gepc import GAPBasedSolver, GreedySolver
from repro.core.model import InstanceStats
from repro.datasets import CITY_CONFIGS, load_instance, make_city, save_instance
from repro.obs import recording, render_text, write_json
from repro.platform import EBSNPlatform, OperationStream


def _solver_by_name(
    name: str, seed: int, shards: int = 1, workers: int = 1
):
    if shards > 1:
        if name != "greedy":
            raise SystemExit(
                f"--shards requires the greedy solver (got {name!r}); "
                "the GAP baseline has no sharded variant"
            )
        from repro.scale import ShardedSolver

        return ShardedSolver(shards=shards, workers=workers, seed=seed)
    if name == "greedy":
        return GreedySolver(seed=seed)
    if name == "gap":
        return GAPBasedSolver(backend="scipy")
    raise ValueError(f"unknown solver {name!r} (choose greedy or gap)")


def _cmd_solve(args: argparse.Namespace) -> int:
    instance = make_city(args.city, scale=args.scale)
    solver = _solver_by_name(
        args.solver, args.seed, shards=args.shards, workers=args.workers
    )
    label = solver.name if args.shards > 1 else args.solver
    try:
        solution, result = measure(label, lambda: solver.solve(instance))
    finally:
        if hasattr(solver, "close"):
            solver.close()
    violations = check_plan(instance, solution.plan)
    print(
        format_table(
            f"GEPC on {args.city} (scale={args.scale})",
            ["solver", "utility", "time (s)", "memory (MB)", "cancelled", "violations"],
            [[
                label,
                result.utility,
                result.seconds,
                result.memory_mb,
                len(solution.cancelled),
                len(violations),
            ]],
        )
    )
    return 0 if not violations else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    instance = make_city(args.city, scale=args.scale)
    rows = []
    for name in ("gap", "greedy"):
        solver = _solver_by_name(name, args.seed)
        solution, result = measure(name, lambda s=solver: s.solve(instance))
        rows.append(
            [name, result.utility, result.seconds, result.memory_mb,
             len(solution.cancelled)]
        )
    print(
        format_table(
            f"GAP vs Greedy on {args.city} (scale={args.scale})",
            ["solver", "utility", "time (s)", "memory (MB)", "cancelled"],
            rows,
        )
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    instance = make_city(args.city, scale=args.scale)
    stats = InstanceStats.of(instance)
    print(
        format_table(
            f"Dataset stats: {args.city}",
            ["|U|", "|E|", "mean xi", "mean eta", "conflict ratio"],
            [[
                stats.n_users,
                stats.n_events,
                stats.mean_lower,
                stats.mean_upper,
                stats.conflict_ratio,
            ]],
        )
    )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    instance = make_city(args.city, scale=args.scale)
    path = save_instance(instance, args.out)
    print(f"wrote {instance.n_users} users / {instance.n_events} events to {path}")
    return 0


def _cmd_solve_file(args: argparse.Namespace) -> int:
    instance = load_instance(args.dataset)
    solver = _solver_by_name(
        args.solver, args.seed, shards=args.shards, workers=args.workers
    )
    label = solver.name if args.shards > 1 else args.solver
    try:
        solution, result = measure(label, lambda: solver.solve(instance))
    finally:
        if hasattr(solver, "close"):
            solver.close()
    violations = check_plan(instance, solution.plan)
    print(
        format_table(
            f"GEPC on {args.dataset}",
            ["solver", "utility", "time (s)", "violations"],
            [[label, result.utility, result.seconds, len(violations)]],
        )
    )
    return 0 if not violations else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    instance = make_city(args.city, scale=args.scale)
    solver = _solver_by_name(
        "greedy", args.seed, shards=args.shards, workers=args.workers
    )
    if args.batch > 1:
        return _simulate_batched(instance, solver, args)
    if args.durable is not None:
        from repro.platform import DurablePlatform

        platform = DurablePlatform(instance, args.durable, solver=solver)
        utility = platform.publish_plans()
        print(
            f"published: utility={utility:.1f} "
            f"(durable state in {args.durable})"
        )
    else:
        platform = EBSNPlatform(instance, solver=solver)
        utility = platform.publish_plans()
        print(f"published: utility={utility:.1f}")
    stream = OperationStream(seed=args.seed)
    for _ in range(args.operations):
        operation = next(
            iter(stream.mixed(platform.instance, platform.plan, 1))
        )
        entry = platform.submit(operation)
        print(
            f"  {type(operation).__name__:<15} dif={entry.dif:<3} "
            f"utility={entry.utility_after:.1f}"
        )
    audit = platform.audit()
    if args.durable is not None:
        platform.close()
    print(
        format_table(
            "End-of-run audit",
            ["operations", "utility", "total dif", "violations"],
            [[
                audit["operations"], audit["utility"],
                audit["total_dif"], audit["violations"],
            ]],
        )
    )
    return 0 if audit["violations"] == 0 else 1


def _simulate_batched(instance, solver, args: argparse.Namespace) -> int:
    from repro.scale import BatchedPlatform

    platform = BatchedPlatform(instance, solver=solver)
    utility = platform.publish_plans()
    print(f"published: utility={utility:.1f} (batched, batch={args.batch})")
    stream = OperationStream(seed=args.seed)
    remaining = args.operations
    while remaining > 0:
        size = min(args.batch, remaining)
        for operation in stream.mixed(platform.instance, platform.plan, size):
            platform.enqueue(operation)
        remaining -= size
        result = platform.flush()
        print(
            f"  batch: submitted={result.submitted} folded={result.folded} "
            f"applied={len(result.applied)} rejected={len(result.rejected)} "
            f"utility={result.utility:.1f}"
        )
    platform.drain()
    audit = platform.snapshot()
    stats = platform.stats()
    print(
        format_table(
            "End-of-run audit (batched)",
            ["operations", "utility", "violations", "folded", "flushes"],
            [[
                stats["applied"], audit["utility"],
                audit["violations"], stats["folded"], stats["flushes"],
            ]],
        )
    )
    return 0 if audit["violations"] == 0 else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.core.iep import IEPEngine
    from repro.core.metrics import total_utility
    from repro.platform.oplog import load_operations

    instance = load_instance(args.dataset)
    operations = load_operations(args.oplog)
    solver = _solver_by_name(args.solver, args.seed)
    plan = solver.solve(instance).plan

    engine = IEPEngine()
    total_dif = 0
    for operation in operations:
        result = engine.apply(instance, plan, operation)
        instance, plan = result.instance, result.plan
        total_dif += result.dif
    violations = check_plan(instance, plan)
    print(
        format_table(
            f"Replay: {len(operations)} operations over {args.dataset}",
            ["operations", "final utility", "total dif", "violations"],
            [[
                len(operations),
                total_utility(instance, plan),
                total_dif,
                len(violations),
            ]],
        )
    )
    return 0 if not violations else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    if args.durable:
        return _fuzz_durable(args)
    if args.service:
        return _fuzz_service(args)
    config = FuzzConfig(
        operations=args.operations,
        n_users=args.users,
        n_events=args.events,
        sharded=args.sharded,
    )
    seeds = range(args.base_seed, args.base_seed + args.seeds)
    summary = run_fuzz(seeds, config)
    print(
        format_table(
            f"Differential fuzz: seeds {seeds.start}..{seeds.stop - 1}",
            [
                "seeds", "operations", "checks", "mismatches",
                "violations", "max drift", "repins",
            ],
            [[
                summary.seeds,
                summary.operations,
                summary.checks,
                len(summary.mismatches),
                len(summary.violations),
                summary.max_drift,
                summary.repins,
            ]],
        )
    )
    for report in summary.failures():
        print(f"seed {report.seed} FAILED:", file=sys.stderr)
        for mismatch in report.mismatches[:10]:
            print(f"  {mismatch}", file=sys.stderr)
        for violation in report.violations[:10]:
            print(f"  {violation}", file=sys.stderr)
        print(
            f"  reproduce: repro-gepc fuzz --base-seed {report.seed} "
            f"--seeds 1 --operations {report.operations}",
            file=sys.stderr,
        )
    return 0 if summary.ok else 1


def _fuzz_durable(args: argparse.Namespace) -> int:
    """Crash-recovery fuzz: kill at every injection point, recover, diff."""
    config = CrashFuzzConfig(
        operations=args.operations,
        n_users=args.users,
        n_events=args.events,
    )
    seeds = range(args.base_seed, args.base_seed + args.seeds)
    summary = run_crash_fuzz(seeds, config)
    print(
        format_table(
            f"Crash-recovery fuzz: seeds {seeds.start}..{seeds.stop - 1}",
            [
                "seeds", "scenarios", "replayed", "torn records",
                "mismatches", "violations",
            ],
            [[
                summary.seeds,
                summary.scenarios,
                summary.replayed,
                summary.truncated_records,
                len(summary.mismatches),
                len(summary.violations),
            ]],
        )
    )
    for report in summary.failures():
        print(f"{report.label()} FAILED:", file=sys.stderr)
        for mismatch in report.mismatches[:10]:
            print(f"  {mismatch}", file=sys.stderr)
        for violation in report.violations[:10]:
            print(f"  {violation}", file=sys.stderr)
        print(
            f"  reproduce: repro-gepc fuzz --durable "
            f"--base-seed {report.seed} --seeds 1 "
            f"--operations {config.operations}",
            file=sys.stderr,
        )
    return 0 if summary.ok else 1


def _fuzz_service(args: argparse.Namespace) -> int:
    """Service-loop fuzz: real client/server loop vs in-process oracle."""
    from repro.check import ServiceFuzzConfig, run_service_fuzz

    config = ServiceFuzzConfig(
        operations=args.operations,
        n_users=args.users,
        n_events=args.events,
    )
    seeds = range(args.base_seed, args.base_seed + args.seeds)
    summary = run_service_fuzz(seeds, config)
    print(
        format_table(
            f"Service fuzz: seeds {seeds.start}..{seeds.stop - 1}",
            ["seeds", "operations", "checks", "mismatches", "violations"],
            [[
                summary.seeds,
                summary.operations,
                summary.checks,
                len(summary.mismatches),
                len(summary.violations),
            ]],
        )
    )
    if summary.lockdep is not None:
        dep = summary.lockdep
        print(
            f"lockdep: {dep.locks} lock(s), {dep.acquisitions} "
            f"acquisition(s), {dep.edges} order edge(s) "
            f"({dep.identified} mapped to declared identities), "
            f"{len(dep.violations)} violation(s), "
            f"{len(dep.cycles)} cycle(s), {len(dep.stalls)} "
            "loop stall(s)"
        )
        for problem in dep.violations + dep.cycles:
            print(f"  {problem}", file=sys.stderr)
        for stall in dep.stalls[:5]:
            print(f"  advisory: {stall}", file=sys.stderr)
    for report in summary.failures():
        print(f"seed {report.seed} FAILED:", file=sys.stderr)
        for mismatch in report.mismatches[:10]:
            print(f"  {mismatch}", file=sys.stderr)
        for violation in report.violations[:10]:
            print(f"  {violation}", file=sys.stderr)
        print(
            f"  reproduce: repro-gepc fuzz --service "
            f"--base-seed {report.seed} --seeds 1 "
            f"--operations {report.operations}",
            file=sys.stderr,
        )
    return 0 if summary.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant planning service until SIGTERM/SIGINT."""
    from repro.service import run_service

    return run_service(
        args.root,
        host=args.host,
        port=args.port,
        backpressure=args.backpressure,
        fsync=not args.no_fsync,
    )


def _cmd_recover(args: argparse.Namespace) -> int:
    """Recover a durable platform directory and report what was rebuilt."""
    from repro.platform import DurablePlatform, RecoveryError

    try:
        platform, report = DurablePlatform.recover(
            args.directory, solver=GreedySolver(seed=args.seed)
        )
    except RecoveryError as exc:
        print(f"recovery failed: {exc}", file=sys.stderr)
        return 1
    platform.close()
    print(report.summary())
    print(
        format_table(
            f"Recovered state: {args.directory}",
            [
                "snapshot seq", "last seq", "replayed", "rejected",
                "torn records", "utility", "audit checks", "mismatches",
            ],
            [[
                report.snapshot_seq,
                report.last_seq,
                report.replayed,
                report.rejected_skipped,
                report.truncated_records,
                report.utility,
                report.audit_checks,
                len(report.mismatches),
            ]],
        )
    )
    return 0 if report.ok else 1


def _add_scale_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--shards", type=int, default=1,
        help="solve as this many spatial shards (greedy only; "
        "see docs/scaling.md)",
    )
    sub.add_argument(
        "--workers", type=int, default=1,
        help="process-pool width for the shard-solve stage (default 1)",
    )


def _add_trace_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--distance",
        choices=("dense", "tiled"),
        default=None,
        help="distance backend: dense plane (default/oracle) or "
        "coordinate-resident tiles (value-identical; see "
        "docs/memory.md).  Overrides REPRO_DISTANCE.",
    )
    sub.add_argument(
        "--trace",
        action="store_true",
        help="print a per-phase timing/counter table to stderr",
    )
    sub.add_argument(
        "--trace-json",
        metavar="PATH",
        default=None,
        help="write the recorder snapshot as JSON to PATH",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gepc",
        description="GEPC/IEP reproduction toolkit (Cheng et al., ICDE 2017)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, handler in (
        ("solve", _cmd_solve),
        ("compare", _cmd_compare),
        ("stats", _cmd_stats),
        ("export", _cmd_export),
        ("simulate", _cmd_simulate),
    ):
        sub = subparsers.add_parser(name)
        sub.add_argument(
            "--city", default="beijing", choices=sorted(CITY_CONFIGS)
        )
        sub.add_argument("--scale", type=float, default=1.0)
        sub.add_argument("--seed", type=int, default=0)
        _add_trace_arguments(sub)
        sub.set_defaults(handler=handler)
    subparsers.choices["solve"].add_argument(
        "--solver", default="greedy", choices=["greedy", "gap"]
    )
    _add_scale_arguments(subparsers.choices["solve"])
    subparsers.choices["export"].add_argument("--out", required=True)
    subparsers.choices["simulate"].add_argument(
        "--operations", type=int, default=10
    )
    _add_scale_arguments(subparsers.choices["simulate"])
    subparsers.choices["simulate"].add_argument(
        "--batch", type=int, default=1,
        help="coalesce operations in batches of this size through the "
        "BatchedPlatform (default 1: serial submission)",
    )
    subparsers.choices["simulate"].add_argument(
        "--durable", metavar="DIR", default=None,
        help="run on a DurablePlatform persisting WAL + snapshots to "
        "DIR (recover later with `repro-gepc recover DIR`; see "
        "docs/durability.md)",
    )

    solve_file = subparsers.add_parser("solve-file")
    solve_file.add_argument("dataset")
    solve_file.add_argument(
        "--solver", default="greedy", choices=["greedy", "gap"]
    )
    solve_file.add_argument("--seed", type=int, default=0)
    _add_scale_arguments(solve_file)
    _add_trace_arguments(solve_file)
    solve_file.set_defaults(handler=_cmd_solve_file)

    replay = subparsers.add_parser("replay")
    replay.add_argument("dataset")
    replay.add_argument("oplog")
    replay.add_argument(
        "--solver", default="greedy", choices=["greedy", "gap"]
    )
    replay.add_argument("--seed", type=int, default=0)
    _add_trace_arguments(replay)
    replay.set_defaults(handler=_cmd_replay)

    fuzz = subparsers.add_parser(
        "fuzz",
        help="differential fuzz of the incremental kernel "
        "(see docs/correctness.md)",
    )
    fuzz.add_argument(
        "--seeds", type=int, default=25,
        help="number of consecutive seeds to fuzz (default 25)",
    )
    fuzz.add_argument(
        "--base-seed", type=int, default=0,
        help="first seed of the range (default 0)",
    )
    fuzz.add_argument(
        "--operations", type=int, default=12,
        help="atomic operations replayed per seed (default 12)",
    )
    fuzz.add_argument(
        "--users", type=int, default=24,
        help="users per fuzz instance (default 24)",
    )
    fuzz.add_argument(
        "--events", type=int, default=10,
        help="events per fuzz instance (default 10)",
    )
    fuzz.add_argument(
        "--sharded", action="store_true",
        help="additionally cross-check the sharded solver and batched "
        "platform against their monolithic/serial counterparts",
    )
    fuzz.add_argument(
        "--durable", action="store_true",
        help="crash-recovery fuzz: kill a DurablePlatform at every "
        "injection point (with and without torn WAL tails), recover, "
        "and diff against an uncrashed twin (see docs/durability.md)",
    )
    fuzz.add_argument(
        "--service", action="store_true",
        help="service-loop fuzz: drive the operation streams through "
        "the real planning-service client/server loop (HTTP + "
        "WebSocket) and diff every frame against an in-process "
        "oracle (see docs/service.md)",
    )
    _add_trace_arguments(fuzz)
    fuzz.set_defaults(handler=_cmd_fuzz)

    serve = subparsers.add_parser(
        "serve",
        help="host the multi-tenant async planning service "
        "(see docs/service.md)",
    )
    serve.add_argument(
        "--root", required=True,
        help="state root; each tenant persists under <root>/<name>/ "
        "and is recovered from there on startup",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8414,
        help="TCP port (0 picks a free port; the bound port is in the "
        "readiness line)",
    )
    serve.add_argument(
        "--backpressure", type=int, default=64,
        help="per-tenant write-queue bound; full queues block "
        "producers (default 64)",
    )
    serve.add_argument(
        "--no-fsync", action="store_true",
        help="skip per-append fsync (survives SIGKILL, not power loss; "
        "for tests and benches)",
    )
    _add_trace_arguments(serve)
    serve.set_defaults(handler=_cmd_serve)

    recover = subparsers.add_parser(
        "recover",
        help="recover a durable platform directory (snapshot + WAL "
        "replay; see docs/durability.md)",
    )
    recover.add_argument(
        "directory", help="state directory written by --durable runs"
    )
    recover.add_argument("--seed", type=int, default=0)
    _add_trace_arguments(recover)
    recover.set_defaults(handler=_cmd_recover)

    lint = subparsers.add_parser(
        "lint",
        help="run the repro-lint invariant checks "
        "(see docs/linting.md)",
    )
    from repro.lint.cli import add_lint_arguments
    from repro.lint.cli import run as lint_run

    add_lint_arguments(lint)
    lint.set_defaults(handler=lint_run)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    distance = getattr(args, "distance", None)
    if distance is not None:
        from repro.core.tiles import set_distance_backend

        set_distance_backend(distance)
    trace = getattr(args, "trace", False)
    trace_json = getattr(args, "trace_json", None)
    if not trace and trace_json is None:
        with maybe_shadow_checks():
            return args.handler(args)
    with recording() as recorder, maybe_shadow_checks():
        code = args.handler(args)
    if trace:
        print(
            render_text(recorder, title=f"Trace: {args.command}"),
            file=sys.stderr,
        )
    if trace_json is not None:
        write_json(recorder, trace_json)
    return code


if __name__ == "__main__":
    sys.exit(main())
