"""Single-event-per-user baseline (the restricted model of prior work [3]).

Li et al. (KDD'14) study social event organisation where every user
attends *at most one* event and events never conflict.  Under that
restriction the assignment problem is polynomial: it is a bipartite
b-matching (users of degree <= 1, events of capacity ``eta_j``), solved
exactly here with the from-scratch min-cost-flow substrate.  Participation
lower bounds stay out of the matching (prior work ignores them) and are
applied afterwards by cancellation, like every solver in this repository.

The baseline quantifies what the paper's generality buys: multi-event
plans typically collect 2-4x the utility of the best single-event
matching on the same instance (each user can stack compatible events).
"""

from __future__ import annotations

from repro.core.gepc.base import (
    GEPCSolution,
    GEPCSolver,
    cancel_deficient_events,
)
from repro.core.model import Instance
from repro.core.plan import GlobalPlan
from repro.core.tolerances import BUDGET_TOL
from repro.flow.graph import FlowNetwork
from repro.flow.mincost import min_cost_flow
from repro.obs import get_recorder


class SingleEventSolver(GEPCSolver):
    """Exact max-utility assignment with at most one event per user."""

    name = "single-event"

    def solve(self, instance: Instance) -> GEPCSolution:
        obs = get_recorder()
        plan = GlobalPlan(instance)
        edges = [
            (user, event)
            for user in range(instance.n_users)
            for event in range(instance.n_events)
            if instance.utility[user, event] > 0.0
            and 2.0 * instance.distances.user_event(user, event)
            + instance.cost_model.fee(event)
            <= instance.users[user].budget + BUDGET_TOL
        ]

        if edges:
            with obs.span("single_event.matching"):
                self._assign(instance, plan, edges)
        cancelled = cancel_deficient_events(instance, plan)
        return GEPCSolution(
            plan,
            cancelled=cancelled,
            solver=self.name,
            diagnostics={
                "candidate_edges": float(len(edges)),
                "matched": float(plan.size()),
            },
        )

    @staticmethod
    def _assign(
        instance: Instance,
        plan: GlobalPlan,
        edges: list[tuple[int, int]],
    ) -> None:
        source, sink = 0, 1
        user_base = 2
        event_base = 2 + instance.n_users
        network = FlowNetwork(2 + instance.n_users + instance.n_events)
        for user in range(instance.n_users):
            network.add_edge(source, user_base + user, 1.0, 0.0)
        for event in range(instance.n_events):
            network.add_edge(
                event_base + event,
                sink,
                float(instance.events[event].upper),
                0.0,
            )
        arcs = [
            network.add_edge(
                user_base + user,
                event_base + event,
                1.0,
                -float(instance.utility[user, event]),
            )
            for user, event in edges
        ]
        # All assignment arcs have negative cost, so min-cost max-flow is
        # exactly the max-utility b-matching.
        min_cost_flow(network, source, sink)
        for (user, event), arc in zip(edges, arcs):
            if network.flow_on(arc) > 0.5:
                plan.add(user, event)
