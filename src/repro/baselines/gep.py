"""The GEP baseline: utility-aware planning without lower bounds.

This is the problem prior work [4] solves (and the paper's Theorem 1 reduces
from): maximise utility subject to conflicts, budgets, and *upper* bounds
only.  Implemented as a greedy utility-descending insertion — exactly the
:class:`UtilityFill` step run on an empty plan with every event open.

Running GEP on a GEPC instance demonstrates the paper's motivation: the
resulting plan routinely leaves events below their participation lower
bounds (measured by :meth:`GEPSolver.lower_bound_violations`).
"""

from __future__ import annotations

from repro.core.gepc.base import GEPCSolution, GEPCSolver
from repro.core.model import Instance
from repro.core.plan import GlobalPlan
from repro.obs import get_recorder


class GEPSolver(GEPCSolver):
    """Prior-work baseline that ignores participation lower bounds."""

    name = "gep-no-lower-bounds"

    def solve(self, instance: Instance) -> GEPCSolution:
        obs = get_recorder()
        plan = GlobalPlan(instance)
        residual = [event.upper for event in instance.events]
        candidates = [
            (-instance.utility[user, event], user, event)
            for user in range(instance.n_users)
            for event in range(instance.n_events)
            if instance.utility[user, event] > 0.0
        ]
        candidates.sort()
        added = 0
        with obs.span("gep.insert"):
            for _, user, event in candidates:
                if residual[event] <= 0:
                    continue
                if plan.can_attend(user, event):
                    plan.add(user, event)
                    residual[event] -= 1
                    added += 1
        obs.count("gep.copies_added", added)
        return GEPCSolution(
            plan,
            solver=self.name,
            diagnostics={
                "added": float(added),
                "lower_violations": float(
                    self.lower_bound_violations(instance, plan)
                ),
            },
        )

    @staticmethod
    def lower_bound_violations(instance: Instance, plan: GlobalPlan) -> int:
        """Events this plan would hold with too few participants."""
        return sum(
            1
            for event in range(instance.n_events)
            if 0 < plan.attendance(event) < instance.events[event].lower
        )
