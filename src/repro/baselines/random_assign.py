"""Random feasible assignment — the sanity-check floor.

Users are visited in random order and offered random events; every insertion
respects conflicts, budgets, and upper bounds, and events finishing below
their lower bound are cancelled.  Useful in tests (any real solver must beat
it) and as the cheap seed for the local-search improver.
"""

from __future__ import annotations

import random

from repro.core.gepc.base import (
    GEPCSolution,
    GEPCSolver,
    cancel_deficient_events,
)
from repro.core.model import Instance
from repro.core.plan import GlobalPlan
from repro.obs import get_recorder


class RandomSolver(GEPCSolver):
    """Uniformly random feasible planner."""

    name = "random"

    def __init__(self, seed: int | None = 0, attempts_per_user: int = 8) -> None:
        self._seed = seed
        self._attempts = attempts_per_user

    def solve(self, instance: Instance) -> GEPCSolution:
        obs = get_recorder()
        rng = random.Random(self._seed)
        plan = GlobalPlan(instance)
        residual = [event.upper for event in instance.events]

        users = list(range(instance.n_users))
        rng.shuffle(users)
        with obs.span("random.assign"):
            for user in users:
                for _ in range(self._attempts):
                    event = rng.randrange(instance.n_events) if instance.n_events else None
                    if event is None:
                        break
                    if residual[event] > 0 and plan.can_attend(user, event):
                        plan.add(user, event)
                        residual[event] -= 1

        cancelled = cancel_deficient_events(instance, plan)
        return GEPCSolution(plan, cancelled=cancelled, solver=self.name)
