"""Baselines: the comparison algorithms of Section V.

* :mod:`repro.baselines.rerun` — Re-GAP and Re-Greedy, the "recompute from
  scratch after an atomic operation" competitors of Tables VII-IX,
* :mod:`repro.baselines.gep` — the GEP of prior work [4] (no lower bounds),
* :mod:`repro.baselines.single_event` — the one-event-per-user model of
  prior work [3], solved exactly via min-cost flow,
* :mod:`repro.baselines.random_assign` — a random feasible plan, the floor
  any serious algorithm must clear.
"""

from repro.baselines.gep import GEPSolver
from repro.baselines.random_assign import RandomSolver
from repro.baselines.rerun import RerunBaseline
from repro.baselines.single_event import SingleEventSolver

__all__ = [
    "GEPSolver",
    "RandomSolver",
    "RerunBaseline",
    "SingleEventSolver",
]
