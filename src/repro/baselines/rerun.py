"""Re-GAP and Re-Greedy: recompute-from-scratch after an atomic operation.

Tables VII-IX compare the incremental algorithms against simply re-running
the GEPC solvers on the post-change instance.  The re-run ignores the old
plan entirely, so its negative impact ``dif(P, P')`` is typically large even
when its utility is comparable — the trade-off the IEP problem formalises.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.gepc.base import GEPCSolver
from repro.core.iep.operations import AtomicOperation
from repro.core.metrics import dif as dif_metric
from repro.core.metrics import total_utility
from repro.core.model import Instance
from repro.core.plan import GlobalPlan
from repro.obs import get_recorder


@dataclass
class RerunOutcome:
    """Result of a from-scratch re-solve on the changed instance."""

    instance: Instance
    plan: GlobalPlan
    utility: float
    dif: int


class RerunBaseline:
    """Wraps a GEPC solver as an IEP competitor (Re-GAP / Re-Greedy)."""

    def __init__(self, solver: GEPCSolver) -> None:
        self._solver = solver

    @property
    def name(self) -> str:
        return f"re-{self._solver.name}"

    def apply(
        self,
        instance: Instance,
        plan: GlobalPlan,
        operation: AtomicOperation,
    ) -> RerunOutcome:
        """Apply ``operation`` by re-solving GEPC from scratch."""
        obs = get_recorder()
        operation.validate(instance)
        new_instance = operation.apply_to_instance(instance)
        with obs.span("rerun.resolve"):
            solution = self._solver.solve(new_instance)
        return RerunOutcome(
            instance=new_instance,
            plan=solution.plan,
            utility=total_utility(new_instance, solution.plan),
            dif=dif_metric(plan, solution.plan),
        )
