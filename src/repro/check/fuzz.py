"""The deterministic differential fuzzer (``repro-gepc fuzz``).

For each seed: generate a small synthetic Meetup instance, solve it with
the greedy GEPC solver, then replay a seeded random atomic-operation
stream through the incremental IEP engine.  After *every* operation:

1. **Invariant audit** — every cached quantity (route costs, attendee
   index, attendance, blocked counters, kernel rows, patched instance
   caches) is recomputed from scratch and diffed against the live caches;
2. **Differential vs. from-scratch rerun** — the incrementally maintained
   instance+plan is rebuilt from raw data (``Instance.rebuilt()`` plus
   re-adding every assignment to a fresh :class:`GlobalPlan`) and must
   agree exactly on total utility and on the ``check_plan`` verdict — the
   same cross-validation Re-Greedy/Re-GAP baselines provide at benchmark
   scale, done exhaustively at fuzz scale;
3. **Kernel vs. scalar** — the vectorized ``feasible_mask`` /
   ``insertion_deltas`` rows are compared event-by-event against the
   scalar ``can_attend`` / ``cost_with`` fallback on a cold cache;
4. **Drift bounding** — per-user route-cost drift is measured against the
   exact recompute and re-pinned via :meth:`GlobalPlan.repin_route_cost`
   when it exceeds the re-pin tolerance.

Everything is seeded: the same seed always replays the same instance and
operation stream, so a CI failure reproduces locally with
``repro-gepc fuzz --base-seed <seed> --seeds 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.check.auditor import AuditReport, CacheMismatch, InvariantAuditor
from repro.core.constraints import check_plan
from repro.core.gepc.greedy import GreedySolver
from repro.core.iep.engine import IEPEngine
from repro.core.metrics import total_utility
from repro.core.model import Instance
from repro.core.plan import GlobalPlan
from repro.core.tolerances import (
    AUDIT_FLOAT_TOL,
    BUDGET_TOL,
    ROUTE_DRIFT_REPIN_TOL,
)
from repro.datasets.meetup import MeetupConfig, generate_ebsn
from repro.obs import get_recorder
from repro.platform.stream import OperationStream


@dataclass(frozen=True)
class FuzzConfig:
    """Shape of one fuzzing run (identical across seeds)."""

    operations: int = 12
    n_users: int = 24
    n_events: int = 10
    conflict_ratio: float = 0.35
    # A NewEvent is injected every ``new_event_every`` steps so the
    # with_new_event append path gets coverage (the mixed stream draws
    # only in-place operations).
    new_event_every: int = 5
    float_tol: float = AUDIT_FLOAT_TOL
    drift_tolerance: float = ROUTE_DRIFT_REPIN_TOL
    # Sharded mode (``repro-gepc fuzz --sharded``): additionally
    # cross-check the sharded solver and the batched platform against
    # their monolithic/serial counterparts on every seed.
    sharded: bool = False
    shard_count: int = 3
    batch_size: int = 4


@dataclass
class SeedReport:
    """Everything observed while fuzzing one seed."""

    seed: int
    operations: int = 0
    checks: int = 0
    mismatches: list[CacheMismatch] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    max_drift: float = 0.0
    repins: int = 0
    total_dif: int = 0
    final_utility: float = 0.0
    # Sharded-vs-monolithic utility ratio (1.0 outside sharded mode).
    # Recorded for trend inspection; correctness is gated by the
    # feasibility/determinism checks, not by this number.
    sharded_utility_ratio: float = 1.0

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.violations


@dataclass
class FuzzSummary:
    """Aggregate over all fuzzed seeds."""

    reports: list[SeedReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)

    @property
    def seeds(self) -> int:
        return len(self.reports)

    @property
    def operations(self) -> int:
        return sum(report.operations for report in self.reports)

    @property
    def checks(self) -> int:
        return sum(report.checks for report in self.reports)

    @property
    def mismatches(self) -> list[CacheMismatch]:
        return [m for report in self.reports for m in report.mismatches]

    @property
    def violations(self) -> list[str]:
        return [v for report in self.reports for v in report.violations]

    @property
    def max_drift(self) -> float:
        return max(
            (report.max_drift for report in self.reports), default=0.0
        )

    @property
    def repins(self) -> int:
        return sum(report.repins for report in self.reports)

    def failures(self) -> list[SeedReport]:
        return [report for report in self.reports if not report.ok]


def _rebuild_state(
    instance: Instance, plan: GlobalPlan
) -> tuple[Instance, GlobalPlan]:
    """The from-scratch rerun baseline: same raw data, no carried caches."""
    fresh_instance = instance.rebuilt()
    fresh_plan = GlobalPlan(fresh_instance)
    for user, events in plan:
        for event in events:
            fresh_plan.add(user, event)
    return fresh_instance, fresh_plan


def _check_differential(
    instance: Instance,
    plan: GlobalPlan,
    step: int,
    report: SeedReport,
) -> None:
    """Incremental state vs. a from-scratch rebuild of the same state."""
    fresh_instance, fresh_plan = _rebuild_state(instance, plan)
    report.checks += 2
    incremental = total_utility(instance, plan)
    rebuilt = total_utility(fresh_instance, fresh_plan)
    if incremental != rebuilt:
        report.mismatches.append(
            CacheMismatch(
                kind="differential_utility",
                cached=incremental,
                expected=rebuilt,
                detail=f"step {step}: incremental vs from-scratch utility",
            )
        )
    incremental_verdict = sorted(
        str(v) for v in check_plan(instance, plan)
    )
    rebuilt_verdict = sorted(
        str(v) for v in check_plan(fresh_instance, fresh_plan)
    )
    if incremental_verdict != rebuilt_verdict:
        report.mismatches.append(
            CacheMismatch(
                kind="differential_feasibility",
                cached=incremental_verdict,
                expected=rebuilt_verdict,
                detail=f"step {step}: check_plan verdicts diverge",
            )
        )


def _check_kernel_vs_scalar(
    instance: Instance,
    plan: GlobalPlan,
    step: int,
    config: FuzzConfig,
    report: SeedReport,
) -> None:
    """Vectorized kernel rows vs. the scalar cold-cache fallback."""
    budget_of = [user.budget for user in instance.users]
    for user in range(instance.n_users):
        deltas = plan.insertion_deltas(user)
        mask = plan.feasible_mask(user)
        base = plan.route_cost(user)
        # A copy with this user's kernel row evicted exercises the scalar
        # O(k) fallback paths of can_attend/cost_with.
        cold = plan.copy()
        cold._kernel_cache.pop(user, None)  # repro-lint: ignore[RL001] deliberate eviction to force the scalar path
        assigned = set(plan.user_plan(user))
        for event in range(instance.n_events):
            report.checks += 1
            scalar_cost = cold.cost_with(user, event)
            vector_cost = base + float(deltas[event])
            if abs(scalar_cost - vector_cost) > config.float_tol:
                report.mismatches.append(
                    CacheMismatch(
                        kind="kernel_vs_scalar_cost",
                        cached=vector_cost,
                        expected=scalar_cost,
                        user=user,
                        event=event,
                        detail=f"step {step}: cost_with disagrees",
                    )
                )
            if event in assigned:
                continue
            report.checks += 1
            scalar_ok = cold.can_attend(user, event)
            if scalar_ok != bool(mask[event]):
                # Tolerate pure boundary jitter: both sides sit within the
                # audit tolerance of the budget cut-off.
                margin = scalar_cost - budget_of[user]
                if abs(margin - BUDGET_TOL) <= config.float_tol:
                    continue
                report.mismatches.append(
                    CacheMismatch(
                        kind="kernel_vs_scalar_mask",
                        cached=bool(mask[event]),
                        expected=scalar_ok,
                        user=user,
                        event=event,
                        detail=f"step {step}: can_attend disagrees",
                    )
                )


def _measure_drift(
    plan: GlobalPlan, config: FuzzConfig, report: SeedReport
) -> None:
    """Measure route-cost drift per user; re-pin when it exceeds the
    tolerance (the production response to accumulated float error)."""
    for user in range(plan.instance.n_users):
        drift = abs(plan.repin_route_cost(user, config.drift_tolerance))
        report.checks += 1
        report.max_drift = max(report.max_drift, drift)
        if drift > config.drift_tolerance:
            report.repins += 1


def _check_sharded_solve(
    instance: Instance,
    seed: int,
    config: FuzzConfig,
    auditor: InvariantAuditor,
    report: SeedReport,
) -> None:
    """Sharded solve vs. monolithic greedy: k=1 bit-equivalence, k>1
    feasibility + invariant audit + double-solve determinism."""
    from repro.core.plan import PlanSummary
    from repro.scale import ShardedSolver

    mono = GreedySolver(seed=seed).solve(instance)
    report.checks += 1
    k1 = ShardedSolver(shards=1, seed=seed).solve(instance)
    if PlanSummary.of(k1.plan) != PlanSummary.of(mono.plan):
        report.mismatches.append(
            CacheMismatch(
                kind="sharded_k1_equivalence",
                cached=PlanSummary.of(k1.plan),
                expected=PlanSummary.of(mono.plan),
                detail="shards=1 must reproduce the monolithic greedy plan",
            )
        )

    sharded = ShardedSolver(shards=config.shard_count, seed=seed)
    first = sharded.solve(instance)
    second = sharded.solve(instance)
    report.checks += 1
    if PlanSummary.of(first.plan) != PlanSummary.of(second.plan):
        report.mismatches.append(
            CacheMismatch(
                kind="sharded_determinism",
                cached=PlanSummary.of(second.plan),
                expected=PlanSummary.of(first.plan),
                detail=f"double solve (k={config.shard_count}) diverged",
            )
        )
    for violation in check_plan(instance, first.plan):
        report.violations.append(f"sharded: {violation}")
    audit = auditor.audit(first.plan)
    report.checks += audit.checks
    report.mismatches.extend(audit.mismatches)
    mono_utility = total_utility(instance, mono.plan)
    if mono_utility > 0.0:
        report.sharded_utility_ratio = (
            total_utility(instance, first.plan) / mono_utility
        )


def _check_batched_stream(
    instance: Instance,
    seed: int,
    config: FuzzConfig,
    auditor: InvariantAuditor,
    report: SeedReport,
) -> None:
    """Batched-coalesced application vs. serial replay of its own log."""
    from repro.core.plan import PlanSummary
    from repro.platform.service import EBSNPlatform
    from repro.scale import BatchedPlatform

    batched = BatchedPlatform(instance)
    batched.publish_plans()
    stream = OperationStream(seed=seed + 101)
    batches = max(2, config.operations // max(1, config.batch_size))
    for _ in range(batches):
        for operation in stream.mixed(
            batched.instance, batched.plan, config.batch_size
        ):
            batched.enqueue(operation)
        result = batched.flush()
        for violation in check_plan(batched.instance, batched.plan):
            report.violations.append(f"batched: {violation}")
        report.checks += 1 + result.violations
    batched.drain()

    serial = EBSNPlatform(instance)
    serial.publish_plans()
    for operation in batched.applied_log:
        serial.submit(operation)
    report.checks += 2
    if PlanSummary.of(serial.plan) != PlanSummary.of(batched.plan):
        report.mismatches.append(
            CacheMismatch(
                kind="batched_replay",
                cached=PlanSummary.of(batched.plan),
                expected=PlanSummary.of(serial.plan),
                detail="serial replay of the applied log diverged",
            )
        )
    serial_utility = serial.audit()["utility"]
    batched_utility = batched.snapshot()["utility"]
    if abs(serial_utility - batched_utility) > config.float_tol:
        report.mismatches.append(
            CacheMismatch(
                kind="batched_replay_utility",
                cached=batched_utility,
                expected=serial_utility,
                detail="batched utility diverged from serial replay",
            )
        )
    audit = auditor.audit(batched.plan)
    report.checks += audit.checks
    report.mismatches.extend(audit.mismatches)


def fuzz_seed(seed: int, config: FuzzConfig | None = None) -> SeedReport:
    """Fuzz one seed: solve, replay the operation stream, cross-check."""
    config = config or FuzzConfig()
    report = SeedReport(seed=seed)
    instance = generate_ebsn(
        MeetupConfig(
            n_users=config.n_users,
            n_events=config.n_events,
            n_groups=4,
            conflict_ratio=config.conflict_ratio,
            seed=seed,
        )
    )
    plan = GreedySolver(seed=seed).solve(instance).plan
    engine = IEPEngine()
    stream = OperationStream(seed=seed)
    auditor = InvariantAuditor(float_tol=config.float_tol)

    # The solved starting state must itself audit clean.
    initial: AuditReport = auditor.audit(plan)
    report.checks += initial.checks
    report.mismatches.extend(initial.mismatches)

    for step in range(config.operations):
        if config.new_event_every and step % config.new_event_every == 2:
            operation = stream.new_event(instance)
        else:
            operation = next(iter(stream.mixed(instance, plan, 1)))
        result = engine.apply(instance, plan, operation)
        instance, plan = result.instance, result.plan
        report.operations += 1
        report.total_dif += result.dif

        audit = auditor.audit(plan)
        report.checks += audit.checks
        report.mismatches.extend(audit.mismatches)
        for violation in check_plan(instance, plan):
            report.violations.append(
                f"step {step} ({type(operation).__name__}): {violation}"
            )
        _check_differential(instance, plan, step, report)
        _measure_drift(plan, config, report)
        _check_kernel_vs_scalar(instance, plan, step, config, report)

    # Strategy and shared-plane equivalence run once per seed on the
    # final state — after the operation stream has bent the instance
    # through NewEvent appends, bound shifts, and cache patches, which is
    # exactly where a strategy shortcut or a share/attach bug would show.
    strategy_audit = auditor.audit_kernel_strategies(plan)
    report.checks += strategy_audit.checks
    report.mismatches.extend(strategy_audit.mismatches)
    shm_audit = auditor.audit_shared_planes(instance)
    report.checks += shm_audit.checks
    report.mismatches.extend(shm_audit.mismatches)

    if config.sharded:
        # The stream mutated `instance` past the generated one; the
        # sharded cross-checks run on the *final* instance so they see
        # NewEvent-extended, bound-shifted state too.
        _check_sharded_solve(instance, seed, config, auditor, report)
        _check_batched_stream(instance, seed, config, auditor, report)

    report.final_utility = total_utility(instance, plan)
    return report


def run_fuzz(
    seeds: Iterable[int], config: FuzzConfig | None = None
) -> FuzzSummary:
    """Fuzz every seed and aggregate; emits ``repro.obs`` counters."""
    obs = get_recorder()
    config = config or FuzzConfig()
    summary = FuzzSummary()
    with obs.span("check.fuzz"):
        for seed in seeds:
            with obs.span("seed"):
                report = fuzz_seed(seed, config)
            summary.reports.append(report)
            obs.count("check.fuzz.seeds")
            obs.count("check.fuzz.operations", report.operations)
            obs.count("check.fuzz.checks", report.checks)
            obs.count("check.fuzz.mismatches", len(report.mismatches))
            obs.count("check.fuzz.violations", len(report.violations))
            obs.count("check.fuzz.repins", report.repins)
    obs.gauge("check.fuzz.max_drift", summary.max_drift)
    return summary


__all__ = [
    "FuzzConfig",
    "FuzzSummary",
    "SeedReport",
    "fuzz_seed",
    "run_fuzz",
]
