"""Service-loop differential fuzzing (``repro-gepc fuzz --service``).

Each seed drives a seeded mixed-operation stream through the **real**
client/server loop — JSON wire codec, HTTP or WebSocket transport, the
dispatcher, the tenant's single-writer worker, the batched/durable
platform stack — and holds it in lockstep against an in-process
:class:`~repro.platform.service.EBSNPlatform` oracle applying the
identical operations directly.  After every frame:

* **acceptance agreement** — the service applied the operation iff the
  oracle's engine accepted it (rejections carry the same refusal);
* **bit-identical utility** — the utility in the wire response equals
  the oracle's exactly (floats survive the JSON round-trip by ``repr``);

and at end of stream:

* **plan identity** — the ``plan-summary`` assignments equal
  :class:`~repro.core.plan.PlanSummary` of the oracle's plan;
* **oplog fidelity** — the served applied-log decodes back to exactly
  the operations the oracle accepted, in order.

Frames carry one operation each, so the wire order *is* the serial
order and the oracle needs no coalescing model (fold-equivalence is the
``--sharded`` leg's job; this leg owns the network loop).  Transports
alternate per operation so both stacks see every seed.  Everything is
seeded: a CI failure reproduces locally with
``repro-gepc fuzz --service --base-seed <seed> --seeds 1``.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Iterable

from repro.check.lockdep import LockDepSummary, LoopWatchdog, maybe_lockdep
from repro.core.gepc.greedy import GreedySolver
from repro.core.plan import PlanSummary
from repro.datasets.meetup import MeetupConfig, generate_ebsn
from repro.obs import get_recorder
from repro.platform.durable import REJECTION_ERRORS
from repro.platform.oplog import operation_to_dict
from repro.platform.service import EBSNPlatform
from repro.platform.stream import OperationStream
from repro.service.client import ServiceClient, WebSocketClient
from repro.service.server import ServiceThread


@dataclass(frozen=True)
class ServiceFuzzConfig:
    """Shape of one service-fuzzing run (identical across seeds)."""

    operations: int = 24
    n_users: int = 24
    n_events: int = 10
    n_groups: int = 4
    conflict_ratio: float = 0.35
    # Small cadence so recovery-relevant snapshots land mid-stream too.
    snapshot_every: int = 8


@dataclass
class ServiceSeedReport:
    """Everything observed while service-fuzzing one seed."""

    seed: int
    operations: int = 0
    checks: int = 0
    mismatches: list[str] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.violations


@dataclass
class ServiceFuzzSummary:
    """Aggregate over all service-fuzzed seeds."""

    reports: list[ServiceSeedReport] = field(default_factory=list)
    #: Populated when the run was instrumented (REPRO_SHADOW_CHECKS=1).
    lockdep: LockDepSummary | None = None

    @property
    def ok(self) -> bool:
        if self.lockdep is not None and not self.lockdep.ok:
            return False
        return all(report.ok for report in self.reports)

    @property
    def seeds(self) -> int:
        return len(self.reports)

    @property
    def operations(self) -> int:
        return sum(report.operations for report in self.reports)

    @property
    def checks(self) -> int:
        return sum(report.checks for report in self.reports)

    @property
    def mismatches(self) -> list[str]:
        return [m for report in self.reports for m in report.mismatches]

    @property
    def violations(self) -> list[str]:
        return [v for report in self.reports for v in report.violations]

    def failures(self) -> list[ServiceSeedReport]:
        return [report for report in self.reports if not report.ok]


def _oracle(seed: int, config: ServiceFuzzConfig) -> EBSNPlatform:
    """The in-process twin: same spec-deterministic instance + solver."""
    instance = generate_ebsn(
        MeetupConfig(
            n_users=config.n_users,
            n_events=config.n_events,
            n_groups=config.n_groups,
            conflict_ratio=config.conflict_ratio,
            seed=seed,
        )
    )
    return EBSNPlatform(instance, solver=GreedySolver(seed=seed))


def service_fuzz_seed(
    seed: int,
    service: ServiceThread,
    config: ServiceFuzzConfig | None = None,
) -> ServiceSeedReport:
    """Fuzz one seed against an already-running service."""
    config = config or ServiceFuzzConfig()
    report = ServiceSeedReport(seed=seed)
    tenant = f"fuzz-{seed}"
    oracle = _oracle(seed, config)

    with (
        ServiceClient(service.host, service.port) as http_client,
        WebSocketClient(service.host, service.port) as ws_client,
    ):
        http_client.create_tenant(
            {
                "name": tenant,
                "kind": "meetup",
                "users": config.n_users,
                "events": config.n_events,
                "groups": config.n_groups,
                "conflict": config.conflict_ratio,
                "seed": seed,
                "snapshot_every": config.snapshot_every,
            }
        )
        served_utility = http_client.publish(tenant)
        oracle_utility = oracle.publish_plans()
        report.checks += 1
        if served_utility != oracle_utility:
            report.mismatches.append(
                f"seed {seed}: publish utility {served_utility!r} != "
                f"oracle {oracle_utility!r}"
            )

        stream = OperationStream(seed=seed)
        accepted: list = []
        for step in range(config.operations):
            operation = next(
                iter(stream.mixed(oracle.instance, oracle.plan, 1))
            )
            client = ws_client if step % 2 else http_client
            result = client.submit(tenant, [operation])
            report.operations += 1

            oracle_applied = True
            try:
                entry = oracle.submit(operation)
            except REJECTION_ERRORS:
                oracle_applied = False
            report.checks += 2
            if result["applied"] != int(oracle_applied):
                report.mismatches.append(
                    f"seed {seed} step {step} "
                    f"({type(operation).__name__}): service "
                    f"applied={result['applied']} but oracle "
                    f"{'accepted' if oracle_applied else 'rejected'} it"
                )
                continue
            if oracle_applied:
                accepted.append(operation)
                expected = entry.utility_after
            else:
                expected = oracle.audit()["utility"]
            if result["utility"] != expected:
                report.mismatches.append(
                    f"seed {seed} step {step}: utility "
                    f"{result['utility']!r} != oracle {expected!r}"
                )
            if result["violations"]:
                report.violations.append(
                    f"seed {seed} step {step}: service reported "
                    f"{result['violations']} feasibility violations"
                )

        report.checks += 2
        assignments = http_client.plan_summary(tenant)
        oracle_summary = PlanSummary.of(oracle.plan)
        if (
            tuple(tuple(events) for events in assignments)
            != oracle_summary.assignments
        ):
            report.mismatches.append(
                f"seed {seed}: final plan-summary differs from the "
                "oracle's plan"
            )
        served_log = ws_client.rpc("oplog", tenant=tenant)["ops"]
        expected_log = [operation_to_dict(op) for op in accepted]
        if served_log != expected_log:
            report.mismatches.append(
                f"seed {seed}: applied log ({len(served_log)} op(s)) "
                f"differs from the oracle's accepted stream "
                f"({len(expected_log)} op(s))"
            )
    return report


def run_service_fuzz(
    seeds: Iterable[int], config: ServiceFuzzConfig | None = None
) -> ServiceFuzzSummary:
    """Service-fuzz every seed against one shared in-process service.

    Under ``REPRO_SHADOW_CHECKS=1`` the run is additionally instrumented
    by :mod:`repro.check.lockdep`: every lock the service stack creates
    records its acquisition-order edges (cross-checked against the
    static RL010 table afterwards) and a watchdog thread heartbeats the
    service event loop to catch blocking work that escaped the RL009
    executor discipline.
    """
    obs = get_recorder()
    config = config or ServiceFuzzConfig()
    summary = ServiceFuzzSummary()
    # Install before the service starts so the manager/tenant/platform
    # locks are all created through the instrumented factories.
    with maybe_lockdep() as dep:
        with tempfile.TemporaryDirectory(prefix="servicefuzz-") as root:
            with (
                obs.span("check.servicefuzz"),
                ServiceThread(root) as service,
            ):
                watchdog = None
                if dep is not None and service.loop is not None:
                    watchdog = LoopWatchdog(
                        service.loop, sink=dep.stalls
                    ).start()
                try:
                    for seed in seeds:
                        with obs.span("seed"):
                            report = service_fuzz_seed(
                                seed, service, config
                            )
                        summary.reports.append(report)
                        obs.count("check.servicefuzz.seeds")
                        obs.count(
                            "check.servicefuzz.operations",
                            report.operations,
                        )
                        obs.count(
                            "check.servicefuzz.checks", report.checks
                        )
                        obs.count(
                            "check.servicefuzz.mismatches",
                            len(report.mismatches),
                        )
                        obs.count(
                            "check.servicefuzz.violations",
                            len(report.violations),
                        )
                finally:
                    if watchdog is not None:
                        watchdog.stop()
    if dep is not None:
        summary.lockdep = dep.summarize()
    return summary


__all__ = [
    "ServiceFuzzConfig",
    "ServiceFuzzSummary",
    "ServiceSeedReport",
    "run_service_fuzz",
    "service_fuzz_seed",
]
