"""Differential correctness harness for the incremental plan kernel.

PR 2 made every hot path depend on incrementally maintained state:
splice-delta route costs, per-event attendee indexes, lazy blocked-event
counters, write-locked kernel rows, and identity-shared caches across the
``with_*`` instance updates.  This package is the tooling that keeps that
state honest:

* :class:`InvariantAuditor` recomputes every cached quantity from scratch
  and diffs it against the live caches, producing structured
  :class:`CacheMismatch` reports;
* :func:`shadow_checks` (or the ``REPRO_SHADOW_CHECKS`` env var) wraps
  ``GlobalPlan.add``/``remove`` and ``IEPEngine.apply`` so every mutation
  is audited as it happens;
* :func:`run_fuzz` replays seeded random atomic-operation streams over
  small Meetup instances and cross-checks the incremental IEP path
  against a from-scratch rebuild, and the vectorized kernel against the
  scalar fallbacks (surfaced as ``repro-gepc fuzz``);
* :func:`run_crash_fuzz` kills a :class:`~repro.platform.durable
  .DurablePlatform` at seeded-random injection points (with and without
  torn WAL tails), recovers, and diffs the recovered state against an
  uncrashed twin (surfaced as ``repro-gepc fuzz --durable``; see
  ``docs/durability.md``);
* :func:`run_service_fuzz` drives seeded operation streams through the
  real planning-service client/server loop and holds every frame in
  lockstep against an in-process oracle (surfaced as
  ``repro-gepc fuzz --service``; see ``docs/service.md``);
* :mod:`repro.check.lockdep` instruments ``threading`` lock creation to
  record the runtime lock-acquisition order (cross-checked against the
  static RL010 declared-order table) and heartbeats the service event
  loop to catch stalls — rides along with the service fuzz leg under
  ``REPRO_SHADOW_CHECKS=1``.

See ``docs/correctness.md`` for the full guide.
"""

from repro.check.auditor import AuditReport, CacheMismatch, InvariantAuditor
from repro.check.crashfuzz import (
    CrashFuzzConfig,
    CrashFuzzSummary,
    CrashScenarioReport,
    TwinState,
    crash_fuzz_seed,
    run_crash_fuzz,
    run_twin,
)
from repro.check.fuzz import FuzzConfig, FuzzSummary, SeedReport, fuzz_seed, run_fuzz
from repro.check.lockdep import (
    LockDep,
    LockDepSummary,
    LoopWatchdog,
    lockdep_checks,
    maybe_lockdep,
)
from repro.check.servicefuzz import (
    ServiceFuzzConfig,
    ServiceFuzzSummary,
    ServiceSeedReport,
    run_service_fuzz,
    service_fuzz_seed,
)
from repro.check.shadow import (
    ENV_VAR,
    ShadowCheckError,
    ShadowStats,
    maybe_shadow_checks,
    shadow_checks,
    shadow_checks_enabled,
)

__all__ = [
    "ENV_VAR",
    "AuditReport",
    "CacheMismatch",
    "CrashFuzzConfig",
    "CrashFuzzSummary",
    "CrashScenarioReport",
    "FuzzConfig",
    "FuzzSummary",
    "InvariantAuditor",
    "LockDep",
    "LockDepSummary",
    "LoopWatchdog",
    "SeedReport",
    "ServiceFuzzConfig",
    "ServiceFuzzSummary",
    "ServiceSeedReport",
    "ShadowCheckError",
    "ShadowStats",
    "TwinState",
    "crash_fuzz_seed",
    "fuzz_seed",
    "lockdep_checks",
    "maybe_lockdep",
    "maybe_shadow_checks",
    "run_crash_fuzz",
    "run_fuzz",
    "run_twin",
    "service_fuzz_seed",
    "shadow_checks",
    "shadow_checks_enabled",
]
