"""The invariant auditor: recompute every cached quantity from scratch.

:class:`InvariantAuditor` is the ground-truth referee for the vectorized
incremental kernel (``docs/performance.md``).  It rebuilds each cached
quantity from the raw problem data and diffs it against the live caches:

* per-user **route costs** vs. an exact ``Instance.route_cost`` recompute,
* **attendance counters** and the **attendee index** vs. plan membership,
* plan **start-order** and duplicate-freeness,
* materialised **blocked-event counter** rows vs. a conflict-matrix sum,
* cached **kernel rows** (``insertion_deltas``/``feasible_mask``) vs. the
  scalar splice and feasibility definitions,
* the instance's **patched caches** (distances, conflicts, starts, fees)
  vs. a from-scratch :meth:`Instance.rebuilt` — this is what validates the
  shared-cache identity rules of ``with_event``/``with_user``/
  ``with_utility``/``with_new_event``: an illegally shared or mis-patched
  cache diverges from the rebuild and is reported.

Every divergence is a structured :class:`CacheMismatch`; the auditor never
raises on its own (callers — shadow mode, the fuzzer, tests — decide).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.model import Instance
from repro.core.plan import GlobalPlan
from repro.core.tolerances import AUDIT_FLOAT_TOL, BUDGET_TOL
from repro.obs import get_recorder


@dataclass(frozen=True)
class CacheMismatch:
    """One cached quantity that diverged from its from-scratch recompute."""

    kind: str
    cached: object
    expected: object
    user: int | None = None
    event: int | None = None
    detail: str = ""

    def __str__(self) -> str:
        parts = [self.kind]
        if self.user is not None:
            parts.append(f"user={self.user}")
        if self.event is not None:
            parts.append(f"event={self.event}")
        parts.append(f"cached={self.cached!r}")
        parts.append(f"expected={self.expected!r}")
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)


@dataclass
class AuditReport:
    """Outcome of one audit pass: mismatches plus how much was compared."""

    mismatches: list[CacheMismatch] = field(default_factory=list)
    checks: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def merge(self, other: "AuditReport") -> None:
        self.mismatches.extend(other.mismatches)
        self.checks += other.checks

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.mismatches)} mismatch(es)"
        lines = [f"audit: {self.checks} checks, {status}"]
        lines.extend(f"  {mismatch}" for mismatch in self.mismatches)
        return "\n".join(lines)


class InvariantAuditor:
    """Diffs a plan's live caches against from-scratch recomputation.

    ``float_tol`` bounds the allowed numeric drift between a cached float
    and its exact recompute (splice-delta arithmetic reorders operations,
    so bit-identity cannot be demanded); it is deliberately below
    :data:`repro.core.tolerances.BUDGET_TOL` so audited drift can never
    cross a feasibility boundary the solvers respected.
    """

    def __init__(self, float_tol: float = AUDIT_FLOAT_TOL) -> None:
        self.float_tol = float_tol

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #

    def audit(
        self,
        plan: GlobalPlan,
        users: Sequence[int] | None = None,
        events: Sequence[int] | None = None,
        include_instance: bool = True,
    ) -> AuditReport:
        """Audit ``plan``'s caches; optionally restrict to a user/event
        subset (the shadow mode's per-mutation fast path).

        ``include_instance=True`` additionally rebuilds the instance's own
        caches from scratch and uses the rebuild as the recompute reference,
        so corruption introduced by a ``with_*`` patch is caught too.
        """
        obs = get_recorder()
        report = AuditReport()
        instance = plan.instance
        reference = instance.rebuilt() if include_instance else instance
        if include_instance:
            self._audit_instance_caches(instance, reference, report)
        user_ids = range(instance.n_users) if users is None else users
        event_ids = range(instance.n_events) if events is None else events
        self._audit_users(plan, reference, user_ids, report)
        self._audit_events(plan, event_ids, report)
        obs.count("check.audit.runs")
        obs.count("check.audit.checks", report.checks)
        obs.count("check.audit.mismatches", len(report.mismatches))
        return report

    def audit_kernel_strategies(
        self,
        plan: GlobalPlan,
        users: Sequence[int] | None = None,
        strategies: Sequence[str] | None = None,
    ) -> AuditReport:
        """Cross-audit every registered kernel strategy on ``plan``.

        The strategy contract is *bit-identity*, not closeness: for each
        audited user, every strategy's ``row`` — and every vectorized
        strategy's ``block`` — must reproduce the scalar reference's
        insertion deltas and feasibility mask exactly.  This is what
        makes ``REPRO_KERNEL`` a pure performance knob.
        """
        from repro.core import kernel as kernel_mod

        report = AuditReport()
        names = (
            list(strategies)
            if strategies is not None
            else kernel_mod.available_strategies()
        )
        user_ids = (
            list(range(plan.instance.n_users)) if users is None else list(users)
        )
        reference = kernel_mod.resolve_strategy("scalar")
        expected = {user: reference.row(plan, user) for user in user_ids}
        user_array = np.asarray(user_ids, dtype=np.intp)
        for name in names:
            strategy = kernel_mod.resolve_strategy(name)
            for user in user_ids:
                deltas, mask = strategy.row(plan, user)
                ref_deltas, ref_mask = expected[user]
                report.checks += 2
                if not np.array_equal(deltas, ref_deltas):
                    worst = int(np.abs(deltas - ref_deltas).argmax())
                    report.mismatches.append(
                        CacheMismatch(
                            kind="kernel_strategy_deltas",
                            cached=float(deltas[worst]),
                            expected=float(ref_deltas[worst]),
                            user=user,
                            event=worst,
                            detail=f"strategy {name!r} row != scalar row",
                        )
                    )
                if not np.array_equal(mask, ref_mask):
                    bad = np.flatnonzero(mask != ref_mask).tolist()
                    report.mismatches.append(
                        CacheMismatch(
                            kind="kernel_strategy_mask",
                            cached=bool(mask[bad[0]]),
                            expected=bool(ref_mask[bad[0]]),
                            user=user,
                            event=bad[0],
                            detail=(
                                f"strategy {name!r} mask != scalar mask "
                                f"at events {bad[:5]}"
                            ),
                        )
                    )
            block_deltas, block_mask = strategy.block(plan, user_array)
            for k, user in enumerate(user_ids):
                ref_deltas, ref_mask = expected[user]
                report.checks += 1
                if not np.array_equal(
                    block_deltas[k], ref_deltas
                ) or not np.array_equal(block_mask[k], ref_mask):
                    report.mismatches.append(
                        CacheMismatch(
                            kind="kernel_strategy_block",
                            cached="<block row>",
                            expected="<scalar row>",
                            user=user,
                            detail=f"strategy {name!r} block row diverged",
                        )
                    )
        obs = get_recorder()
        obs.count("check.audit.kernel_strategy_checks", report.checks)
        obs.count("check.audit.mismatches", len(report.mismatches))
        return report

    def audit_shared_planes(self, instance: Instance) -> AuditReport:
        """Audit a shared-memory plane roundtrip of ``instance``.

        Publishes the warmed planes, pickles the instance (handles only),
        re-attaches in-process, and audits the attached clone's caches
        against a from-scratch rebuild — the same reference the regular
        instance-cache audit uses.  A byte lost or reordered anywhere in
        the share/attach path shows up as a cache mismatch.
        """
        import pickle

        from repro.core.shm import PlaneManager

        report = AuditReport()
        with PlaneManager() as manager:
            instance.share_planes(manager)
            try:
                clone: Instance = pickle.loads(pickle.dumps(instance))
                self._audit_instance_caches(clone, clone.rebuilt(), report)
                report.checks += 1
                if not np.array_equal(clone.utility, instance.utility):
                    report.mismatches.append(
                        CacheMismatch(
                            kind="shm_utility_plane",
                            cached="<attached utility>",
                            expected="<parent utility>",
                            detail="utility plane changed across the "
                            "share/attach roundtrip",
                        )
                    )
            finally:
                instance.unshare_planes()
        obs = get_recorder()
        obs.count("check.audit.shm_checks", report.checks)
        obs.count("check.audit.mismatches", len(report.mismatches))
        return report

    def audit_instance_update(
        self, old: Instance, new: Instance
    ) -> AuditReport:
        """Audit a ``with_*`` functional update's carried caches.

        Whatever ``new`` inherited from ``old`` — whether shared by
        identity or patched in place — must match a from-scratch rebuild
        of ``new``.  ``old`` is accepted so call sites read naturally and
        so materialising ``new``'s caches here never mutates ``old``.
        """
        del old  # the rebuild of ``new`` is the only reference needed
        report = AuditReport()
        self._audit_instance_caches(new, new.rebuilt(), report)
        return report

    # ------------------------------------------------------------------ #
    # Instance caches vs. a from-scratch rebuild
    # ------------------------------------------------------------------ #

    def _audit_instance_caches(
        self, instance: Instance, reference: Instance, report: AuditReport
    ) -> None:
        if instance._distances is not None:
            fresh = reference.distances
            live = instance._distances
            # Compare *served* values through the backend interface: for
            # the dense backend this is the plane itself; for the tiled
            # backend it assembles every pair the solvers could ever read,
            # so a stale or mis-invalidated tile diverges here exactly
            # like a mis-patched dense row would.
            ids = np.arange(live.n_users, dtype=np.intp)
            self._compare_matrix(
                report, "instance_user_event_distances",
                live.user_event_rows(ids),
                fresh.user_event_rows(
                    np.arange(fresh.n_users, dtype=np.intp)
                ),
            )
            self._compare_matrix(
                report, "instance_event_event_distances",
                live.event_event_matrix, fresh.event_event_matrix,
            )
        if instance._conflicts is not None:
            report.checks += 1
            if instance._conflicts != reference.conflicts:
                bad = [
                    j
                    for j, (a, b) in enumerate(
                        zip(instance._conflicts, reference.conflicts)
                    )
                    if a != b
                ]
                report.mismatches.append(
                    CacheMismatch(
                        kind="instance_conflict_graph",
                        cached=[instance._conflicts[j] for j in bad[:3]],
                        expected=[reference.conflicts[j] for j in bad[:3]],
                        detail=f"adjacency differs for events {bad}",
                    )
                )
        if instance._conflict_matrix is not None:
            report.checks += 1
            if not np.array_equal(
                instance._conflict_matrix, reference.conflict_matrix
            ):
                rows = np.flatnonzero(
                    (instance._conflict_matrix != reference.conflict_matrix)
                    .any(axis=1)
                ).tolist()
                report.mismatches.append(
                    CacheMismatch(
                        kind="instance_conflict_matrix",
                        cached="<dense matrix>",
                        expected="<dense matrix>",
                        detail=f"rows differ for events {rows}",
                    )
                )
        if instance._event_starts is not None:
            self._compare_matrix(
                report, "instance_event_starts",
                instance._event_starts, reference.event_starts,
            )
        if instance._fee_vector is not None:
            self._compare_matrix(
                report, "instance_fee_vector",
                instance._fee_vector, reference.fee_vector,
            )

    def _compare_matrix(
        self,
        report: AuditReport,
        kind: str,
        cached: np.ndarray,
        expected: np.ndarray,
    ) -> None:
        report.checks += 1
        if cached.shape != expected.shape:
            report.mismatches.append(
                CacheMismatch(
                    kind=kind, cached=cached.shape, expected=expected.shape,
                    detail="shape differs",
                )
            )
            return
        if cached.size == 0:
            return
        worst = float(np.abs(cached - expected).max())
        if worst > self.float_tol:
            where = np.unravel_index(
                int(np.abs(cached - expected).argmax()), cached.shape
            )
            report.mismatches.append(
                CacheMismatch(
                    kind=kind,
                    cached=float(cached[where]),
                    expected=float(expected[where]),
                    detail=f"max |diff|={worst:.3e} at {tuple(map(int, where))}",
                )
            )

    # ------------------------------------------------------------------ #
    # Per-user plan caches
    # ------------------------------------------------------------------ #

    def _audit_users(
        self,
        plan: GlobalPlan,
        reference: Instance,
        users: Iterable[int],
        report: AuditReport,
    ) -> None:
        starts = reference.event_starts
        for user in users:
            events = plan._plans[user]
            # Start order and duplicate-freeness.
            report.checks += 1
            order = [float(starts[j]) for j in events]
            if order != sorted(order) or len(set(events)) != len(events):
                report.mismatches.append(
                    CacheMismatch(
                        kind="plan_order",
                        cached=list(events),
                        expected=sorted(set(events), key=starts.__getitem__),
                        user=user,
                        detail="plan not start-sorted and duplicate-free",
                    )
                )
            # Cached route cost vs. exact recompute.
            report.checks += 1
            exact = reference.route_cost(user, list(events))
            cached_cost = plan._route_costs[user]
            if abs(cached_cost - exact) > self.float_tol:
                report.mismatches.append(
                    CacheMismatch(
                        kind="route_cost",
                        cached=cached_cost,
                        expected=exact,
                        user=user,
                        detail=f"drift {cached_cost - exact:.3e}",
                    )
                )
            # Membership symmetry: plan -> attendee index.
            for event in events:
                report.checks += 1
                if user not in plan._attendee_sets[event]:
                    report.mismatches.append(
                        CacheMismatch(
                            kind="attendee_index",
                            cached=False,
                            expected=True,
                            user=user,
                            event=event,
                            detail="assigned event missing from attendee set",
                        )
                    )
            self._audit_blocked_counters(plan, reference, user, report)
            self._audit_kernel_row(plan, reference, user, report)

    def _audit_blocked_counters(
        self,
        plan: GlobalPlan,
        reference: Instance,
        user: int,
        report: AuditReport,
    ) -> None:
        cached = plan._blocked.get(user)
        if cached is None:
            return  # never materialised: nothing incremental to verify
        events = plan._plans[user]
        matrix = reference.conflict_matrix
        if events:
            expected = matrix[events].sum(axis=0, dtype=np.int16)
        else:
            expected = np.zeros(reference.n_events, dtype=np.int16)
        report.checks += 1
        if cached.shape != expected.shape or not np.array_equal(
            cached, expected
        ):
            bad = (
                np.flatnonzero(cached != expected).tolist()
                if cached.shape == expected.shape
                else []
            )
            first = bad[0] if bad else None
            report.mismatches.append(
                CacheMismatch(
                    kind="blocked_counter",
                    cached=int(cached[first]) if first is not None else cached.shape,
                    expected=(
                        int(expected[first]) if first is not None
                        else expected.shape
                    ),
                    user=user,
                    event=first,
                    detail=f"counter rows differ at events {bad[:5]}",
                )
            )

    def _audit_kernel_row(
        self,
        plan: GlobalPlan,
        reference: Instance,
        user: int,
        report: AuditReport,
    ) -> None:
        cached = plan._kernel_cache.get(user)
        if cached is None:
            return  # cold: nothing cached to diverge
        deltas, mask = cached
        events = plan._plans[user]
        assigned = set(events)
        exact_base = reference.route_cost(user, list(events))
        budget = reference.users[user].budget
        conflicts = reference.conflicts
        for event in range(reference.n_events):
            if event not in assigned:
                report.checks += 1
                exact_delta = (
                    reference.route_cost_with(user, list(events), event)
                    - exact_base
                )
                if abs(float(deltas[event]) - exact_delta) > self.float_tol:
                    report.mismatches.append(
                        CacheMismatch(
                            kind="kernel_deltas",
                            cached=float(deltas[event]),
                            expected=exact_delta,
                            user=user,
                            event=event,
                            detail="insertion delta diverged",
                        )
                    )
                extended = exact_base + exact_delta
            else:
                extended = None
            report.checks += 1
            conflict_free = not any(
                other in conflicts[event] for other in events
            )
            expected_mask = (
                reference.utility[user, event] > 0.0
                and event not in assigned
                and conflict_free
                and extended is not None
                and extended <= budget + BUDGET_TOL
            )
            if bool(mask[event]) != expected_mask:
                # A cached-vs-exact float hair's breadth from the budget
                # boundary is drift, not corruption; report only decisive
                # disagreements.
                if (
                    extended is not None
                    and abs(extended - (budget + BUDGET_TOL)) <= self.float_tol
                ):
                    continue
                report.mismatches.append(
                    CacheMismatch(
                        kind="kernel_mask",
                        cached=bool(mask[event]),
                        expected=expected_mask,
                        user=user,
                        event=event,
                        detail="feasible_mask disagrees with the definition",
                    )
                )

    # ------------------------------------------------------------------ #
    # Per-event counters
    # ------------------------------------------------------------------ #

    def _audit_events(
        self,
        plan: GlobalPlan,
        events: Iterable[int],
        report: AuditReport,
    ) -> None:
        # Membership derived from the plans themselves: the one structure
        # everything else must agree with.
        derived: list[set[int]] = [
            set() for _ in range(plan.instance.n_events)
        ]
        for user, user_events in enumerate(plan._plans):
            for event in user_events:
                derived[event].add(user)
        for event in events:
            report.checks += 1
            if plan._attendance[event] != len(derived[event]):
                report.mismatches.append(
                    CacheMismatch(
                        kind="attendance",
                        cached=plan._attendance[event],
                        expected=len(derived[event]),
                        event=event,
                        detail="attendance counter diverged from membership",
                    )
                )
            report.checks += 1
            if plan._attendee_sets[event] != derived[event]:
                report.mismatches.append(
                    CacheMismatch(
                        kind="attendee_index",
                        cached=sorted(plan._attendee_sets[event]),
                        expected=sorted(derived[event]),
                        event=event,
                        detail="attendee set diverged from membership",
                    )
                )
