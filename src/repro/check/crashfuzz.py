"""Crash-recovery fuzzing (``repro-gepc fuzz --durable``).

For each seed: generate a small Meetup instance, publish through a
:class:`~repro.platform.durable.DurablePlatform`, and run one uncrashed
*baseline* pass of a seeded operation stream, recording the state
(utility + :class:`~repro.core.plan.PlanSummary`) after every sequence
number.  Then, for every crash-injection point (``wal-append``,
``apply``, ``snapshot``) both with and without a torn WAL tail, rerun
the identical stream with a :class:`~repro.platform.durable
.CrashInjector` armed at a seeded-random occurrence, kill the platform
mid-flight, and recover the directory.  The recovered state must be:

* **auditor-clean** — the :class:`~repro.check.auditor.InvariantAuditor`
  finds zero cache mismatches and ``check_plan`` zero violations;
* **twin-identical** — bit-identical utility and an equal plan summary
  versus the uncrashed baseline at the recovered sequence number (the
  durable horizon: everything the WAL + snapshots had made durable at
  the kill, nothing more, nothing less);
* **tail-safe** — when the tail was torn, the torn record is truncated
  and never replayed (the horizon excludes it).

Everything is seeded; a CI failure reproduces locally with
``repro-gepc fuzz --durable --base-seed <seed> --seeds 1``.
"""

from __future__ import annotations

import random
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.core.gepc.greedy import GreedySolver
from repro.core.iep.operations import AtomicOperation
from repro.core.model import Instance
from repro.core.plan import PlanSummary
from repro.datasets.meetup import MeetupConfig, generate_ebsn
from repro.obs import get_recorder
from repro.platform.durable import (
    CRASH_POINTS,
    REJECTION_ERRORS,
    CrashInjector,
    DurablePlatform,
    InjectedCrash,
    RecoveryError,
)
from repro.platform.stream import OperationStream


@dataclass(frozen=True)
class CrashFuzzConfig:
    """Shape of one crash-recovery fuzzing run (identical across seeds)."""

    operations: int = 24
    n_users: int = 24
    n_events: int = 10
    conflict_ratio: float = 0.35
    # Small cadence so several snapshots land inside each run and the
    # recovery path exercises snapshot+replay, not just replay.
    snapshot_every: int = 4
    # fsync per append is pointless inside the fuzzer (the "disk" is a
    # temp dir that dies with the process); atomicity is still exercised.
    fsync: bool = False


@dataclass
class CrashScenarioReport:
    """One injected crash + recovery, diffed against the baseline."""

    seed: int
    point: str
    tear_tail: bool
    crash_after: int
    crashed: bool = False
    recovered_seq: int = 0
    snapshot_seq: int = 0
    replayed: int = 0
    truncated_records: int = 0
    mismatches: list[str] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.crashed and not self.mismatches and not self.violations

    def label(self) -> str:
        tear = "+tear" if self.tear_tail else ""
        return f"seed {self.seed} {self.point}{tear}@{self.crash_after}"


@dataclass
class CrashFuzzSummary:
    """Aggregate over all seeds and crash scenarios."""

    reports: list[CrashScenarioReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)

    @property
    def scenarios(self) -> int:
        return len(self.reports)

    @property
    def seeds(self) -> int:
        return len({report.seed for report in self.reports})

    @property
    def mismatches(self) -> list[str]:
        return [m for report in self.reports for m in report.mismatches]

    @property
    def violations(self) -> list[str]:
        return [v for report in self.reports for v in report.violations]

    @property
    def truncated_records(self) -> int:
        return sum(report.truncated_records for report in self.reports)

    @property
    def replayed(self) -> int:
        return sum(report.replayed for report in self.reports)

    def failures(self) -> list[CrashScenarioReport]:
        return [report for report in self.reports if not report.ok]


class _PointCounter:
    """Injector stand-in that only counts crash-point occurrences."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def fire(self, point: str, wal: object) -> None:
        self.counts[point] = self.counts.get(point, 0) + 1


@dataclass(frozen=True)
class TwinState:
    """Uncrashed state after one sequence number."""

    utility: float
    summary: PlanSummary


def run_twin(
    platform: DurablePlatform,
    operations: list[AtomicOperation] | None = None,
    stream_seed: int = 0,
    n_operations: int = 0,
) -> tuple[dict[int, TwinState], list[AtomicOperation]]:
    """Run the uncrashed twin: publish, apply, record state per seq.

    Publishes ``platform`` (which must be fresh/unpublished), applies
    ``operations`` in order — or draws ``n_operations`` from a seeded
    :class:`OperationStream` when ``operations`` is ``None`` — and
    records the state (utility + :class:`PlanSummary`) after publish and
    after *every* submit.  Rejected operations consume a sequence number
    without changing state, so every possible recovery horizon has a
    twin state to compare against.  Closes the platform and returns
    ``(states_by_seq, operations)``.

    Shared by the crash fuzzer and the service recovery tests: any
    component claiming "bit-identical at the durable horizon" proves it
    against these states.
    """
    states: dict[int, TwinState] = {}

    def record() -> None:
        states[platform.seq] = TwinState(
            utility=platform.audit()["utility"],
            summary=PlanSummary.of(platform.plan),
        )

    platform.publish_plans()
    record()
    if operations is None:
        operations = list(
            OperationStream(seed=stream_seed).mixed(
                platform.instance, platform.plan, n_operations
            )
        )
    for operation in operations:
        try:
            platform.submit(operation)
        except REJECTION_ERRORS:
            pass
        record()
    platform.close()
    return states, operations


def _generate(seed: int, config: CrashFuzzConfig) -> Instance:
    return generate_ebsn(
        MeetupConfig(
            n_users=config.n_users,
            n_events=config.n_events,
            n_groups=4,
            conflict_ratio=config.conflict_ratio,
            seed=seed,
        )
    )


def _run_stream(
    seed: int,
    config: CrashFuzzConfig,
    directory: Path,
    operations: list[AtomicOperation] | None,
    injector: CrashInjector | _PointCounter | None,
) -> tuple[DurablePlatform, list[AtomicOperation], bool]:
    """One platform pass; returns (platform, ops used, crashed?).

    With ``operations=None`` the stream is drawn fresh (deterministic
    given the seed and the published plan); passing the list back in
    repeats the identical workload for the crashed twin.
    """
    instance = _generate(seed, config)
    platform = DurablePlatform(
        instance,
        directory,
        solver=GreedySolver(seed=seed),
        snapshot_every=config.snapshot_every,
        fsync=config.fsync,
        injector=injector,  # type: ignore[arg-type]
    )
    try:
        platform.publish_plans()
    except InjectedCrash:
        return platform, operations or [], True
    if operations is None:
        operations = list(
            OperationStream(seed=seed).mixed(
                platform.instance, platform.plan, config.operations
            )
        )
    for operation in operations:
        try:
            platform.submit(operation)
        except REJECTION_ERRORS:
            continue
        except InjectedCrash:
            return platform, operations, True
    platform.close()
    return platform, operations, False


def _run_baseline(
    seed: int, config: CrashFuzzConfig, directory: Path
) -> tuple[dict[int, TwinState], list[AtomicOperation], dict[str, int]]:
    """The uncrashed twin: per-seq states + the workload + point counts."""
    counter = _PointCounter()
    instance = _generate(seed, config)
    platform = DurablePlatform(
        instance,
        directory,
        solver=GreedySolver(seed=seed),
        snapshot_every=config.snapshot_every,
        fsync=config.fsync,
        injector=counter,  # type: ignore[arg-type]
    )
    states, operations = run_twin(
        platform, stream_seed=seed, n_operations=config.operations
    )
    return states, operations, counter.counts


def crash_fuzz_seed(
    seed: int, config: CrashFuzzConfig | None = None
) -> list[CrashScenarioReport]:
    """All crash scenarios for one seed (every point, with/without tear)."""
    config = config or CrashFuzzConfig()
    reports: list[CrashScenarioReport] = []
    root = Path(tempfile.mkdtemp(prefix=f"crashfuzz-{seed}-"))
    try:
        baseline, operations, counts = _run_baseline(
            seed, config, root / "baseline"
        )
        rng = random.Random(seed)
        for point in CRASH_POINTS:
            for tear_tail in (False, True):
                occurrences = counts.get(point, 0)
                if occurrences == 0:
                    continue
                crash_after = rng.randint(1, occurrences)
                reports.append(
                    _run_scenario(
                        seed,
                        config,
                        root / f"{point}-{tear_tail}",
                        operations,
                        baseline,
                        point,
                        tear_tail,
                        crash_after,
                    )
                )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return reports


def _run_scenario(
    seed: int,
    config: CrashFuzzConfig,
    directory: Path,
    operations: list[AtomicOperation],
    baseline: dict[int, TwinState],
    point: str,
    tear_tail: bool,
    crash_after: int,
) -> CrashScenarioReport:
    report = CrashScenarioReport(
        seed=seed, point=point, tear_tail=tear_tail, crash_after=crash_after
    )
    injector = CrashInjector(
        crash_after=crash_after, point=point, tear_tail=tear_tail
    )
    _, _, crashed = _run_stream(
        seed, config, directory, operations, injector
    )
    report.crashed = crashed
    if not crashed:
        report.violations.append(
            f"{report.label()}: injector never fired (run completed)"
        )
        return report
    try:
        recovered, recovery = DurablePlatform.recover(
            directory,
            solver=GreedySolver(seed=seed),
            snapshot_every=config.snapshot_every,
            fsync=config.fsync,
        )
    except RecoveryError as exc:
        inner = exc.report
        if inner is not None:
            report.mismatches.extend(inner.mismatches)
            report.violations.extend(inner.violations)
        report.violations.append(f"{report.label()}: {exc}")
        return report
    recovered.close()
    report.recovered_seq = recovery.last_seq
    report.snapshot_seq = recovery.snapshot_seq
    report.replayed = recovery.replayed
    report.truncated_records = recovery.truncated_records
    report.mismatches.extend(recovery.mismatches)
    report.violations.extend(recovery.violations)

    twin = baseline.get(recovery.last_seq)
    if twin is None:
        report.mismatches.append(
            f"{report.label()}: recovered to seq {recovery.last_seq}, "
            "which the uncrashed twin never reached"
        )
        return report
    if recovery.utility != twin.utility:
        report.mismatches.append(
            f"{report.label()}: utility {recovery.utility!r} != "
            f"uncrashed twin {twin.utility!r} at seq {recovery.last_seq}"
        )
    if PlanSummary.of(recovered.plan) != twin.summary:
        report.mismatches.append(
            f"{report.label()}: recovered plan differs from uncrashed "
            f"twin at seq {recovery.last_seq}"
        )
    if tear_tail and report.truncated_records == 0 and point != "snapshot":
        # A torn tail must be detected (the snapshot point can land after
        # the WAL record was already superseded by a snapshot, but for
        # wal-append/apply the torn record is always the newest).
        report.violations.append(
            f"{report.label()}: tail was torn but nothing was truncated"
        )
    return report


def run_crash_fuzz(
    seeds: Iterable[int], config: CrashFuzzConfig | None = None
) -> CrashFuzzSummary:
    """Crash-fuzz every seed and aggregate; emits ``repro.obs`` counters."""
    obs = get_recorder()
    config = config or CrashFuzzConfig()
    summary = CrashFuzzSummary()
    with obs.span("check.crashfuzz"):
        for seed in seeds:
            with obs.span("seed"):
                reports = crash_fuzz_seed(seed, config)
            summary.reports.extend(reports)
            obs.count("check.crashfuzz.seeds")
            obs.count("check.crashfuzz.scenarios", len(reports))
            obs.count(
                "check.crashfuzz.mismatches",
                sum(len(r.mismatches) for r in reports),
            )
            obs.count(
                "check.crashfuzz.violations",
                sum(len(r.violations) for r in reports),
            )
    obs.count("check.crashfuzz.replayed", summary.replayed)
    obs.count("check.crashfuzz.truncated", summary.truncated_records)
    return summary


__all__ = [
    "CrashFuzzConfig",
    "CrashFuzzSummary",
    "CrashScenarioReport",
    "TwinState",
    "crash_fuzz_seed",
    "run_crash_fuzz",
    "run_twin",
]
