"""Runtime lockdep: observe real lock-acquisition order and loop stalls.

The static side of this story lives in :mod:`repro.lint.interproc`
(RL010 proves the *declared* lock-order table acyclic over every path
the call graph can see).  This module is the dynamic cross-check: while
installed, :class:`LockDep` replaces the ``threading.Lock``/``RLock``
factories with thin instrumented wrappers that record, per thread, the
stack of held locks and every *acquisition-order edge* (lock A held
while taking lock B), keyed by each lock's allocation site — the
``(file, line)`` of the ``threading.Lock()`` call, which is exactly the
site the lint call graph records for ``self._lock = threading.Lock()``
declarations.  After a run the observed edges are mapped back onto the
static identities (``module:Class._attr``) and checked against the
declared order table from ``[tool.repro-lint.rules.rl010]``:

* an edge taking a *later* declared lock while holding an *earlier* one
  in reverse rank order is an **order violation**;
* a cycle among observed edges (ABBA and longer) is a **dynamic
  deadlock witness** — reported even between locks the table does not
  rank.

A :class:`LoopWatchdog` rides along for the RL009 story: a daemon
thread heartbeats the service event loop via ``call_soon_threadsafe``
and records any beat whose round-trip exceeds the stall threshold —
evidence of blocking work that reached the loop despite the executor
discipline.  Stalls are advisory (CI runners stutter); order violations
and dynamic cycles are failures.

Enabled in the service fuzz leg under ``REPRO_SHADOW_CHECKS=1``::

    REPRO_SHADOW_CHECKS=1 repro-gepc fuzz --service --seeds 10

Caveats (also in ``docs/linting.md``): only locks *created while the
patch is installed* are tracked — module-level locks allocated at import
time (e.g. ``repro.core.kernel._ACTIVE_LOCK``) predate it; and code that
froze ``from threading import Lock`` before installation keeps the real
factory.
"""

from __future__ import annotations

import _thread
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.check.shadow import shadow_checks_enabled
from repro.obs import get_recorder

#: Allocation site of one instrumented lock: (absolute file, line).
Site = tuple[str, int]


@dataclass
class LockDepSummary:
    """What one instrumented run observed, cross-checked statically."""

    locks: int = 0
    acquisitions: int = 0
    edges: int = 0
    identified: int = 0  # edges whose both endpoints map to identities
    violations: list[str] = field(default_factory=list)
    cycles: list[str] = field(default_factory=list)
    stalls: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Stalls are advisory; order violations and cycles are not."""
        return not self.violations and not self.cycles


class _InstrumentedLock:
    """A recording proxy in front of one real ``threading`` lock.

    Supports the full lock protocol (``acquire(blocking, timeout)``,
    ``release``, context manager, ``locked``) and forwards anything else
    (``_is_owned``, ``_release_save``, ...) to the inner lock so
    ``threading.Condition``/``Event``/``Queue`` built on top keep
    working unchanged.
    """

    def __init__(self, dep: "LockDep", inner: Any, site: Site,
                 reentrant: bool) -> None:
        self._dep = dep
        self._inner = inner
        self._site = site
        self._reentrant = reentrant

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._dep._record_acquire(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._dep._record_release(self)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class LockDep:
    """Install/uninstall the instrumented lock factories and aggregate.

    Not reentrant and process-global while installed — exactly one
    instance should be active (the fuzz harness owns it).
    """

    def __init__(self) -> None:
        # A raw _thread lock: allocated outside the patched factories so
        # recording can never recurse into itself.
        self._state_lock = _thread.allocate_lock()
        self._held = threading.local()
        self._installed = False
        self._real_lock = threading.Lock
        self._real_rlock = threading.RLock
        self.locks = 0
        self.acquisitions = 0
        #: (first site, second site) -> observation count.
        self.edges: dict[tuple[Site, Site], int] = {}
        self.stalls: list[str] = []

    # -- patching ------------------------------------------------------ #

    def install(self) -> None:
        if self._installed:
            raise RuntimeError("LockDep is already installed")
        self._real_lock = threading.Lock
        self._real_rlock = threading.RLock
        threading.Lock = self._make_factory(reentrant=False)  # type: ignore[misc, assignment]
        threading.RLock = self._make_factory(reentrant=True)  # type: ignore[misc, assignment]
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            return
        threading.Lock = self._real_lock  # type: ignore[misc]
        threading.RLock = self._real_rlock  # type: ignore[misc]
        self._installed = False

    def _make_factory(self, reentrant: bool) -> Any:
        real = self._real_rlock if reentrant else self._real_lock

        def factory() -> _InstrumentedLock:
            site = _allocation_site()
            with self._state_lock:
                self.locks += 1
            return _InstrumentedLock(self, real(), site, reentrant)

        return factory

    # -- recording (called from the wrappers, any thread) -------------- #

    def _stack(self) -> list[_InstrumentedLock]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def _record_acquire(self, lock: _InstrumentedLock) -> None:
        stack = self._stack()
        with self._state_lock:
            self.acquisitions += 1
            for held in stack:
                if held is lock and lock._reentrant:
                    continue  # re-entrant self-acquisition
                pair = (held._site, lock._site)
                self.edges[pair] = self.edges.get(pair, 0) + 1
        stack.append(lock)

    def _record_release(self, lock: _InstrumentedLock) -> None:
        stack = self._stack()
        # A plain Lock may legally be released by a thread that never
        # acquired it; only unwind our own thread's view.
        for position in range(len(stack) - 1, -1, -1):
            if stack[position] is lock:
                del stack[position]
                break

    # -- reporting ----------------------------------------------------- #

    def summarize(
        self,
        declared_order: list[str] | None = None,
        lock_table: dict[str, Site] | None = None,
    ) -> LockDepSummary:
        """Cross-check observations against the static declared order.

        With no arguments the declared table and the identity map are
        loaded from the lint side (``[tool.repro-lint.rules.rl010]`` and
        the project call graph); both degrade to empty when the source
        tree is not available, leaving only dynamic-cycle detection.
        """
        if declared_order is None:
            declared_order = static_declared_order()
        if lock_table is None:
            lock_table = static_lock_table()
        by_site = _invert_lock_table(lock_table)
        rank = {identity: i for i, identity in enumerate(declared_order)}
        summary = LockDepSummary(
            locks=self.locks,
            acquisitions=self.acquisitions,
            edges=len(self.edges),
            stalls=list(self.stalls),
        )
        named: dict[tuple[str, str], tuple[Site, Site, int]] = {}
        for (first, second), count in sorted(self.edges.items()):
            first_id = _identify(first, by_site)
            second_id = _identify(second, by_site)
            if first_id is None or second_id is None:
                continue
            summary.identified += 1
            named.setdefault(
                (first_id, second_id), (first, second, count)
            )
            if (
                first_id in rank
                and second_id in rank
                and rank[first_id] > rank[second_id]
            ):
                summary.violations.append(
                    f"declared-order violation: took {second_id} "
                    f"(rank {rank[second_id]}) at "
                    f"{_fmt_site(second)} while holding {first_id} "
                    f"(rank {rank[first_id]}, allocated at "
                    f"{_fmt_site(first)}) — observed {count} time(s)"
                )
        summary.cycles.extend(_dynamic_cycles(named))
        get_recorder().count(
            "check.lockdep.violations", len(summary.violations)
        )
        get_recorder().count("check.lockdep.cycles", len(summary.cycles))
        return summary


class LoopWatchdog:
    """Heartbeat an event loop from a daemon thread; record stalls.

    Every ``interval`` seconds a no-op callback is posted with
    ``call_soon_threadsafe``; if its round-trip exceeds ``threshold``
    the beat is recorded as a stall.  ``stop()`` joins the thread.
    """

    def __init__(
        self,
        loop: Any,
        threshold: float = 0.5,
        interval: float = 0.1,
        sink: list[str] | None = None,
    ) -> None:
        self.loop = loop
        self.threshold = threshold
        self.interval = interval
        self.stalls: list[str] = sink if sink is not None else []
        self._stopping = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "LoopWatchdog":
        self._thread = threading.Thread(
            target=self._monitor, name="repro-lockdep-watchdog",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def _monitor(self) -> None:
        obs = get_recorder()
        while not self._stopping.wait(self.interval):
            beat = threading.Event()
            started = time.monotonic()
            try:
                self.loop.call_soon_threadsafe(beat.set)
            except RuntimeError:  # loop already closed
                return
            beat.wait(timeout=self.threshold * 4)
            delay = time.monotonic() - started
            if delay > self.threshold:
                obs.count("check.lockdep.stalls")
                self.stalls.append(
                    f"event-loop stall: heartbeat took {delay:.3f}s "
                    f"(threshold {self.threshold:.3f}s)"
                )


@contextmanager
def lockdep_checks() -> Iterator[LockDep]:
    """Scoped installation: patch the factories, yield the recorder."""
    dep = LockDep()
    dep.install()
    try:
        yield dep
    finally:
        dep.uninstall()


@contextmanager
def maybe_lockdep() -> Iterator[LockDep | None]:
    """:func:`lockdep_checks` when ``REPRO_SHADOW_CHECKS`` is on, else ``None``."""
    if not shadow_checks_enabled():
        yield None
        return
    with lockdep_checks() as dep:
        yield dep


# ---------------------------------------------------------------------- #
# Static-side bridges (degrade to empty without a source checkout)
# ---------------------------------------------------------------------- #


def static_declared_order() -> list[str]:
    """The RL010 declared-order table the static rule enforces."""
    try:
        from repro.lint.config import load_config
        from repro.lint.rules.rl010_lockorder import LockOrderDiscipline
    except Exception:  # pragma: no cover - lint side unavailable
        return []
    options = dict(LockOrderDiscipline.default_options)
    try:
        options.update(load_config().rule_options.get("rl010", {}))
    except Exception:  # pragma: no cover - unparsable pyproject
        pass
    declared = options.get("declared_order", [])
    return [str(identity) for identity in declared]


def static_lock_table() -> dict[str, Site]:
    """``identity -> allocation site`` from the lint call graph."""
    try:
        from repro.lint.callgraph import CallGraph
        from repro.lint.config import load_config
        from repro.lint.engine import collect_contexts
        from repro.lint.interproc import collect_lock_table
    except Exception:  # pragma: no cover - lint side unavailable
        return {}
    try:
        contexts, _, _ = collect_contexts(None, config=load_config())
    except Exception:  # pragma: no cover - no linted tree on disk
        return {}
    if not contexts:
        return {}
    return collect_lock_table(CallGraph.build(contexts))


def _invert_lock_table(
    lock_table: dict[str, Site]
) -> dict[tuple[tuple[str, ...], int], str]:
    """Map (path-suffix parts, line) back to a lock identity."""
    inverted: dict[tuple[tuple[str, ...], int], str] = {}
    for identity, (path, line) in lock_table.items():
        inverted[(Path(path).parts[-3:], line)] = identity
    return inverted


def _identify(
    site: Site, by_site: dict[tuple[tuple[str, ...], int], str]
) -> str | None:
    """The static identity of a runtime allocation site, if known."""
    parts = Path(site[0]).parts
    for depth in (3, 2, 1):
        identity = by_site.get((parts[-depth:], site[1]))
        if identity is not None:
            return identity
    return None


def _allocation_site() -> Site:
    """(file, line) of the frame that called the lock factory."""
    frame = sys._getframe(1)
    here = __file__
    while frame is not None and frame.f_code.co_filename == here:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - interpreter shutdown
        return ("<unknown>", 0)
    return (frame.f_code.co_filename, frame.f_lineno)


def _fmt_site(site: Site) -> str:
    path = Path(site[0])
    return f"{'/'.join(path.parts[-3:])}:{site[1]}"


def _dynamic_cycles(
    named: dict[tuple[str, str], tuple[Site, Site, int]]
) -> list[str]:
    """Cycles among identity-mapped observed edges (ABBA and longer)."""
    adjacency: dict[str, set[str]] = {}
    for first_id, second_id in named:
        if first_id == second_id:
            continue  # re-entrant wrappers never record self-edges
        adjacency.setdefault(first_id, set()).add(second_id)
        adjacency.setdefault(second_id, set())
    cycles: list[str] = []
    seen_cycles: set[tuple[str, ...]] = set()
    for start in sorted(adjacency):
        stack: list[tuple[str, tuple[str, ...]]] = [(start, (start,))]
        while stack:
            node, path = stack.pop()
            for successor in sorted(adjacency.get(node, ())):
                if successor == start and len(path) > 1:
                    canonical = tuple(sorted(path))
                    if canonical in seen_cycles:
                        continue
                    seen_cycles.add(canonical)
                    hops = " -> ".join(path + (start,))
                    witness = named.get(
                        (path[-1], start)
                    ) or named.get((path[0], path[1]))
                    where = (
                        f" (e.g. {_fmt_site(witness[1])})"
                        if witness
                        else ""
                    )
                    cycles.append(
                        f"dynamic lock-order cycle: {hops}{where}"
                    )
                elif successor not in path:
                    stack.append((successor, path + (successor,)))
    return cycles


__all__ = [
    "LockDep",
    "LockDepSummary",
    "LoopWatchdog",
    "lockdep_checks",
    "maybe_lockdep",
    "static_declared_order",
    "static_lock_table",
]
