"""Shadow-checked mutations: audit the caches as they change.

With shadow checks on, every ``GlobalPlan.add``/``remove`` triggers a
cache audit of the touched user and event, and every ``IEPEngine.apply``
triggers a full audit (instance caches included) plus a
:func:`repro.core.constraints.check_plan` feasibility pass on the repaired
result.  Mid-repair states are *expected* to violate constraints (that is
what the repair is fixing), so ``check_plan`` runs only at the apply
boundary; the cache invariants hold at every mutation and are checked at
every mutation.

Two ways to turn it on::

    with shadow_checks() as stats:        # scoped, raises on mismatch
        platform.submit(operation)

    REPRO_SHADOW_CHECKS=1 repro-gepc simulate ...   # whole CLI run

Shadow checks cost O(instance) per mutation — this is a debugging and CI
tool, not a production mode.  Progress is visible through ``repro.obs``
counters (``check.shadow.mutations``, ``check.shadow.applies``,
``check.shadow.mismatches``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Mapping

from repro.check.auditor import CacheMismatch, InvariantAuditor
from repro.core import plan as plan_module
from repro.core.constraints import check_plan
from repro.core.iep import engine as engine_module
from repro.obs import get_recorder

ENV_VAR = "REPRO_SHADOW_CHECKS"

_FALSEY = {"", "0", "false", "no", "off"}


class ShadowCheckError(AssertionError):
    """A shadow-checked mutation left a cache inconsistent (or an apply
    produced an infeasible plan)."""


@dataclass
class ShadowStats:
    """What the shadow checker saw while it was installed."""

    mutations: int = 0
    applies: int = 0
    checks: int = 0
    mismatches: list[CacheMismatch] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.violations


@contextmanager
def shadow_checks(
    raise_on_mismatch: bool = True,
    auditor: InvariantAuditor | None = None,
):
    """Install mutation/apply shadow checks for the duration of the block.

    Yields the live :class:`ShadowStats`.  With ``raise_on_mismatch=False``
    mismatches are collected instead of raised (useful for surveying a
    known-bad state).  Nesting is allowed; each level audits independently.
    """
    auditor = auditor or InvariantAuditor()
    stats = ShadowStats()

    def _record(problems: list, message: str) -> None:
        get_recorder().count("check.shadow.mismatches", len(problems))
        if raise_on_mismatch:
            raise ShadowCheckError(message)

    def on_mutation(plan, action: str, user: int, event: int) -> None:
        obs = get_recorder()
        stats.mutations += 1
        obs.count("check.shadow.mutations")
        report = auditor.audit(
            plan, users=(user,), events=(event,), include_instance=False
        )
        stats.checks += report.checks
        if report.mismatches:
            stats.mismatches.extend(report.mismatches)
            _record(
                report.mismatches,
                f"shadow check after {action}(user={user}, event={event}):\n"
                + report.summary(),
            )

    def on_apply(result) -> None:
        obs = get_recorder()
        stats.applies += 1
        obs.count("check.shadow.applies")
        report = auditor.audit(result.plan)
        stats.checks += report.checks
        violations = check_plan(result.instance, result.plan)
        operation = type(result.operation).__name__
        if report.mismatches:
            stats.mismatches.extend(report.mismatches)
            _record(
                report.mismatches,
                f"shadow check after IEPEngine.apply({operation}):\n"
                + report.summary(),
            )
        if violations:
            rendered = [f"{operation}: {v}" for v in violations]
            stats.violations.extend(rendered)
            _record(
                rendered,
                f"IEPEngine.apply({operation}) returned an infeasible plan: "
                + "; ".join(str(v) for v in violations),
            )

    plan_module._MUTATION_HOOKS.append(on_mutation)
    engine_module._APPLY_HOOKS.append(on_apply)
    try:
        yield stats
    finally:
        plan_module._MUTATION_HOOKS.remove(on_mutation)
        engine_module._APPLY_HOOKS.remove(on_apply)


def shadow_checks_enabled(environ: Mapping[str, str] | None = None) -> bool:
    """Whether ``REPRO_SHADOW_CHECKS`` asks for shadow mode."""
    env = os.environ if environ is None else environ
    return env.get(ENV_VAR, "").strip().lower() not in _FALSEY


def maybe_shadow_checks(environ: Mapping[str, str] | None = None):
    """``shadow_checks()`` if the env var is set, else a no-op context.

    The CLI entry point wraps every subcommand in this, which is how
    ``REPRO_SHADOW_CHECKS=1 repro-gepc ...`` turns the whole run into a
    shadow-checked one.
    """
    if shadow_checks_enabled(environ):
        return shadow_checks()
    return nullcontext(None)
