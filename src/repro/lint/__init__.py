"""repro-lint: AST-based invariant linter for this repository.

PRs 2-4 made the reproduction fast by layering *disciplines* over the
paper's algorithms — splice-delta route caches, one shared budget
tolerance, lock-guarded batch queues, seeded determinism.  The runtime
shadow auditor (:mod:`repro.check`) catches violations only when a fuzz
seed happens to hit them; this package enforces the same disciplines
statically, on every line, at CI time.

Rules (see ``docs/linting.md`` for the full catalogue and rationale):

========  =========================  ======================================
RL001     cache-discipline           solver caches written only by owners
RL002     tolerance-discipline       budget comparisons use BUDGET_TOL
RL003     lock-discipline            guarded-by attrs accessed under lock
RL004     leaked-mutable-array       public APIs freeze/copy cache ndarrays
RL005     determinism                seeded RNGs; no set-order loops
RL006     obs-coverage               entry points open a repro.obs span
RL007     shm-discipline             shared-memory planes torn down safely
RL008     dense-materialisation      no dense planes outside the backend
RL009     async-blocking-discipline  no blocking call paths from async defs
RL010     lock-order-discipline      acyclic global lock-acquisition order
RL011     guarded-by-escape          RL003 + loop confinement, cross-function
========  =========================  ======================================

RL009-RL011 are *project rules*: they run over a call graph built from
every module at once (:mod:`repro.lint.callgraph`) with effect
summaries propagated to a fixpoint (:mod:`repro.lint.interproc`).

Suppress a deliberate violation inline with a reason::

    plan._plans[u] = route  # repro-lint: ignore[RL001] bit-exact transplant

Unused suppressions are themselves findings (``RL000``).
"""

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintResult, lint_source, run_lint
from repro.lint.findings import Finding
from repro.lint.registry import RULES, Rule, register
from repro.lint.reporters import render_json, render_text, to_dict

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "RULES",
    "Rule",
    "lint_source",
    "load_config",
    "register",
    "render_json",
    "render_text",
    "run_lint",
    "to_dict",
]
