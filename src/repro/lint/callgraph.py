"""Project-wide call graph for interprocedural lint rules.

Built once per lint run from every parsed :class:`ModuleContext`, the
graph resolves:

* module-level functions (directly and through ``import``/``from``
  aliases, including relative imports),
* methods, via receiver-type inference from parameter/attribute
  annotations and ``self.x = KnownClass(...)`` constructor assignments
  (inheritance-aware lookup),
* indirect dispatch through ``functools.partial`` and the executor
  wrappers ``run_in_executor``/``asyncio.to_thread`` (plus the repo's
  ``Tenant.run_write``/``PlanningApp._read`` launder helpers) — edges
  crossing an executor boundary are marked ``via_executor`` so RL009
  knows the callee runs off the event loop,
* ``@property`` reads (an attribute access becomes a call edge to the
  getter).

Alongside edges it records, per function, the threading-lock
acquisitions (``with self._lock:`` / ``lock.acquire()``), the
``guarded-by:``/``loop-confined`` attribute accesses with the lock set
held at each site, and per class the lock attributes and annotation
tables.  :mod:`repro.lint.interproc` turns this into effect summaries.

Known limits (documented in ``docs/linting.md``): calls through builtin
dunder dispatch (``len(x)`` → ``__len__``), locks aliased into local
variables, and receivers whose type inference fails resolve to opaque
externals and are not followed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any

from repro.lint.annotations import GuardDeclarations, declarations_for_span
from repro.lint.context import ModuleContext, dotted_name

EXECUTOR_WRAPPERS = frozenset(
    {"run_in_executor", "to_thread", "run_write", "_read"}
)
_LOCK_FACTORIES = {
    "threading.Lock": False,  # value: reentrant?
    "threading.RLock": True,
}
_PROPERTY_DECORATORS = {"property", "cached_property"}


@dataclass(frozen=True)
class LockSite:
    """One lock object, identified by its declaring attribute."""

    identity: str  # "module:Class.attr" or "module:NAME"
    attr: str | None  # bare attribute name for instance locks
    path: str
    line: int
    reentrant: bool


@dataclass(frozen=True)
class Acquisition:
    """One lock-acquisition site (``with lock:`` or ``lock.acquire()``)."""

    site: LockSite  # the lock's declaration
    line: int  # where this acquisition happens
    col: int
    held: tuple["Acquisition", ...]  # locks already held here


@dataclass(frozen=True)
class CallSite:
    """One outgoing call (or callable reference) inside a function."""

    callee: str | None  # resolved function key, if any
    external: str | None  # dotted name for unresolved targets
    line: int
    col: int
    via_executor: bool
    held: tuple[Acquisition, ...]


@dataclass(frozen=True)
class GuardAccess:
    """An access to a ``guarded-by:`` attribute, with held locks."""

    owner: str  # class key owning the attribute
    attr: str
    needed: str  # lock identity that must be held
    line: int
    col: int
    held: tuple[str, ...]  # lock identities held at the access
    cross_class: bool


@dataclass(frozen=True)
class ConfinedAccess:
    """An access to a ``loop-confined`` attribute."""

    owner: str
    attr: str
    line: int
    col: int


@dataclass
class FunctionInfo:
    """Summary-relevant facts about one function or method."""

    key: str  # "module:Qual.name"
    module: str
    path: str
    qualname: str
    name: str
    cls: str | None  # enclosing class key
    is_async: bool
    line: int
    node: ast.FunctionDef | ast.AsyncFunctionDef = field(repr=False)
    returns: str | None = None  # resolved return-annotation class key
    calls: list[CallSite] = field(default_factory=list)
    acquisitions: list[Acquisition] = field(default_factory=list)
    guard_accesses: list[GuardAccess] = field(default_factory=list)
    confined_accesses: list[ConfinedAccess] = field(default_factory=list)


@dataclass
class ClassInfo:
    """Per-class method table, attribute types, and annotations."""

    key: str  # "module:Qual"
    module: str
    path: str
    name: str
    line: int
    node: ast.ClassDef = field(repr=False)
    methods: dict[str, str] = field(default_factory=dict)
    properties: dict[str, str] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)
    lock_attrs: dict[str, LockSite] = field(default_factory=dict)
    declarations: GuardDeclarations = field(
        default_factory=lambda: GuardDeclarations({}, {})
    )
    bases: list[str] = field(default_factory=list)


@dataclass
class _ModuleInfo:
    context: ModuleContext
    imports: dict[str, str] = field(default_factory=dict)
    class_keys: dict[str, str] = field(default_factory=dict)
    function_keys: dict[str, str] = field(default_factory=dict)


class CallGraph:
    """The resolved project call graph plus lock/annotation tables."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.module_locks: dict[str, LockSite] = {}
        self._modules: dict[str, _ModuleInfo] = {}
        self._modules_by_length: list[str] = []

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls,
        contexts: list[ModuleContext],
        *,
        executor_wrappers: frozenset[str] = EXECUTOR_WRAPPERS,
    ) -> "CallGraph":
        graph = cls()
        for context in contexts:
            graph._modules[context.module] = _ModuleInfo(context=context)
        graph._modules_by_length = sorted(
            graph._modules, key=len, reverse=True
        )
        for mod in graph._modules.values():
            graph._collect_defs(mod)
        for mod in graph._modules.values():
            graph._collect_imports(mod)
        for mod in graph._modules.values():
            graph._resolve_class_tables(mod)
        for mod in graph._modules.values():
            graph._walk_bodies(mod, executor_wrappers)
        return graph

    def _collect_defs(self, mod: _ModuleInfo) -> None:
        context = mod.context
        module = context.module

        def walk(
            body: list[ast.stmt],
            prefix: str,
            cls_key: str | None,
            in_class_body: bool,
        ) -> None:
            for node in body:
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    qual = f"{prefix}{node.name}"
                    key = f"{module}:{qual}"
                    self.functions[key] = FunctionInfo(
                        key=key,
                        module=module,
                        path=context.path,
                        qualname=qual,
                        name=node.name,
                        cls=cls_key,
                        is_async=isinstance(node, ast.AsyncFunctionDef),
                        line=node.lineno,
                        node=node,
                    )
                    mod.function_keys[qual] = key
                    if in_class_body and cls_key is not None:
                        info = self.classes[cls_key]
                        info.methods[node.name] = key
                        if _is_property(node):
                            info.properties[node.name] = key
                    walk(node.body, qual + ".", cls_key, False)
                elif isinstance(node, ast.ClassDef):
                    qual = f"{prefix}{node.name}"
                    key = f"{module}:{qual}"
                    self.classes[key] = ClassInfo(
                        key=key,
                        module=module,
                        path=context.path,
                        name=node.name,
                        line=node.lineno,
                        node=node,
                    )
                    mod.class_keys[qual] = key
                    walk(node.body, qual + ".", key, True)

        walk(context.tree.body, "", None, False)
        for node in context.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    reentrant = self._lock_factory(mod, node.value)
                    if reentrant is not None:
                        identity = f"{module}:{target.id}"
                        self.module_locks[identity] = LockSite(
                            identity=identity,
                            attr=None,
                            path=context.path,
                            line=node.lineno,
                            reentrant=reentrant,
                        )

    def _collect_imports(self, mod: _ModuleInfo) -> None:
        module = mod.context.module
        is_package = mod.context.path.endswith("__init__.py")
        for node in ast.walk(mod.context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        mod.imports[alias.asname] = alias.name
                    else:
                        mod.imports[alias.name.split(".")[0]] = (
                            alias.name.split(".")[0]
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    parts = module.split(".")
                    drop = node.level - (1 if is_package else 0)
                    base_parts = parts[: len(parts) - drop]
                    base = ".".join(base_parts)
                    source = (
                        f"{base}.{node.module}" if node.module else base
                    )
                else:
                    source = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mod.imports[local] = f"{source}.{alias.name}"

    def _lock_factory(
        self, mod: _ModuleInfo, value: ast.expr
    ) -> bool | None:
        """``True``/``False`` (reentrancy) if ``value`` constructs a lock."""
        if not isinstance(value, ast.Call):
            return None
        dotted = dotted_name(value.func)
        if dotted is None:
            return None
        kind, fq = self._resolve_fq(mod, dotted)
        if kind == "external" and fq in _LOCK_FACTORIES:
            return _LOCK_FACTORIES[fq]
        return None

    def _resolve_class_tables(self, mod: _ModuleInfo) -> None:
        module = mod.context.module
        for key, info in self.classes.items():
            if info.module != module:
                continue
            end = info.node.end_lineno or info.node.lineno
            info.declarations = declarations_for_span(
                mod.context, info.node.lineno, end
            )
            for base in info.node.bases:
                dotted = dotted_name(base)
                if dotted is None:
                    continue
                kind, target = self._resolve_fq(mod, dotted)
                if kind == "class":
                    info.bases.append(target)
            for stmt in info.node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    resolved = self._resolve_annotation(
                        mod, stmt.annotation
                    )
                    if resolved:
                        info.attr_types[stmt.target.id] = resolved
            for method_key in list(info.methods.values()):
                fn = self.functions[method_key]
                params = self._param_types(mod, fn.node)
                for node in _walk_shallow(fn.node):
                    self._record_attr_assignment(mod, info, params, node)
        for fn in self.functions.values():
            if fn.module != module or fn.node.returns is None:
                continue
            fn.returns = self._resolve_annotation(mod, fn.node.returns)

    def _record_attr_assignment(
        self,
        mod: _ModuleInfo,
        info: ClassInfo,
        params: dict[str, str],
        node: ast.AST,
    ) -> None:
        target: ast.expr | None = None
        annotation: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, annotation, value = node.target, node.annotation, node.value
        else:
            return
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return
        attr = target.attr
        if value is not None:
            reentrant = self._lock_factory(mod, value)
            if reentrant is not None and attr not in info.lock_attrs:
                identity = f"{info.key}.{attr}"
                info.lock_attrs[attr] = LockSite(
                    identity=identity,
                    attr=attr,
                    path=info.path,
                    line=node.lineno,
                    reentrant=reentrant,
                )
                return
        resolved: str | None = None
        if annotation is not None:
            resolved = self._resolve_annotation(mod, annotation)
        if resolved is None and value is not None:
            resolved = self._infer_value_type(mod, params, value)
        if resolved and attr not in info.attr_types:
            info.attr_types[attr] = resolved

    def _param_types(
        self,
        mod: _ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> dict[str, str]:
        types: dict[str, str] = {}
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is None:
                continue
            resolved = self._resolve_annotation(mod, arg.annotation)
            if resolved:
                types[arg.arg] = resolved
        return types

    def _infer_value_type(
        self, mod: _ModuleInfo, known: dict[str, str], value: ast.expr
    ) -> str | None:
        if isinstance(value, ast.Name):
            return known.get(value.id)
        if isinstance(value, ast.Call):
            dotted = dotted_name(value.func)
            if dotted is not None:
                kind, target = self._resolve_fq(mod, dotted)
                if kind == "class":
                    return target
                if kind == "func":
                    return self.functions[target].returns
        return None

    def _resolve_annotation(
        self, mod: _ModuleInfo, annotation: ast.expr
    ) -> str | None:
        """Resolve a type annotation to a project class key, if any."""
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(
                    annotation.value, mode="eval"
                ).body
            except SyntaxError:
                return None
        if isinstance(annotation, ast.BinOp) and isinstance(
            annotation.op, ast.BitOr
        ):
            left = self._resolve_annotation(mod, annotation.left)
            right = self._resolve_annotation(mod, annotation.right)
            if left and right and left != right:
                return None  # ambiguous union
            return left or right
        if isinstance(annotation, ast.Subscript):
            dotted = dotted_name(annotation.value)
            if dotted is not None and dotted.split(".")[-1] == "Optional":
                return self._resolve_annotation(mod, annotation.slice)
            return None  # container-of-X is not X
        dotted = dotted_name(annotation)
        if dotted is None or dotted == "None":
            return None
        kind, target = self._resolve_fq(mod, dotted)
        return target if kind == "class" else None

    def _resolve_fq(
        self, mod: _ModuleInfo, dotted: str
    ) -> tuple[str, str]:
        """Resolve a dotted name to ``(kind, target)``.

        Kinds: ``func``/``class`` (project entities, target is the key),
        ``module`` (a project module), ``external`` (anything else).
        """
        if dotted in mod.function_keys:
            return "func", mod.function_keys[dotted]
        if dotted in mod.class_keys:
            return "class", mod.class_keys[dotted]
        parts = dotted.split(".")
        head = parts[0]
        if head in mod.imports:
            fq = ".".join([mod.imports[head]] + parts[1:])
        else:
            fq = dotted
        for module in self._modules_by_length:
            if fq == module:
                return "module", module
            if fq.startswith(module + "."):
                rest = fq[len(module) + 1:]
                target_mod = self._modules[module]
                if rest in target_mod.function_keys:
                    return "func", target_mod.function_keys[rest]
                if rest in target_mod.class_keys:
                    return "class", target_mod.class_keys[rest]
                return "external", fq
        return "external", fq

    # -- inheritance-aware lookups ------------------------------------

    def _mro(self, class_key: str) -> list[ClassInfo]:
        seen: set[str] = set()
        order: list[ClassInfo] = []
        queue = [class_key]
        while queue:
            key = queue.pop(0)
            if key in seen:
                continue
            seen.add(key)
            info = self.classes.get(key)
            if info is None:
                continue
            order.append(info)
            queue.extend(info.bases)
        return order

    def resolve_method(self, class_key: str, name: str) -> str | None:
        for info in self._mro(class_key):
            if name in info.methods:
                return info.methods[name]
        return None

    def property_getter(self, class_key: str, name: str) -> str | None:
        for info in self._mro(class_key):
            if name in info.properties:
                return info.properties[name]
        return None

    def attr_type(self, class_key: str, attr: str) -> str | None:
        for info in self._mro(class_key):
            if attr in info.attr_types:
                return info.attr_types[attr]
        return None

    def lock_attr(self, class_key: str, attr: str) -> LockSite | None:
        for info in self._mro(class_key):
            if attr in info.lock_attrs:
                return info.lock_attrs[attr]
        return None

    def guarded_decl(
        self, class_key: str, attr: str
    ) -> tuple[str, str] | None:
        """``(lock identity, owner class key)`` for a guarded attribute."""
        for info in self._mro(class_key):
            if attr in info.declarations.guarded:
                lock_attr = info.declarations.guarded[attr][0]
                return f"{info.key}.{lock_attr}", info.key
        return None

    def confined_decl(self, class_key: str, attr: str) -> str | None:
        for info in self._mro(class_key):
            if attr in info.declarations.loop_confined:
                return info.key
        return None

    # -- body analysis -------------------------------------------------

    def _walk_bodies(
        self, mod: _ModuleInfo, executor_wrappers: frozenset[str]
    ) -> None:
        module = mod.context.module
        for fn in self.functions.values():
            if fn.module != module:
                continue
            nested = {
                other.name: other.key
                for other in self.functions.values()
                if other.module == module
                and other.qualname == f"{fn.qualname}.{other.name}"
            }
            walker = _FunctionWalker(
                self, mod, fn, nested, executor_wrappers
            )
            for stmt in fn.node.body:
                walker.visit(stmt)

    # -- export --------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """The ``--callgraph-json`` artifact shape (stable, versioned)."""
        functions: dict[str, Any] = {}
        for key in sorted(self.functions):
            fn = self.functions[key]
            functions[key] = {
                "path": fn.path,
                "line": fn.line,
                "async": fn.is_async,
                "class": fn.cls,
                "calls": [
                    {
                        "callee": call.callee,
                        "external": call.external,
                        "line": call.line,
                        "via_executor": call.via_executor,
                    }
                    for call in fn.calls
                ],
                "acquires": sorted(
                    {acq.site.identity for acq in fn.acquisitions}
                ),
            }
        locks: dict[str, Any] = {}
        for site in self.iter_lock_sites():
            locks[site.identity] = {
                "path": site.path,
                "line": site.line,
                "reentrant": site.reentrant,
            }
        classes: dict[str, Any] = {}
        for key in sorted(self.classes):
            info = self.classes[key]
            classes[key] = {
                "path": info.path,
                "line": info.line,
                "bases": info.bases,
                "attr_types": dict(sorted(info.attr_types.items())),
                "guarded": {
                    attr: lock
                    for attr, (lock, _) in sorted(
                        info.declarations.guarded.items()
                    )
                },
                "loop_confined": sorted(
                    info.declarations.loop_confined
                ),
            }
        return {
            "version": 1,
            "modules": {
                name: info.context.path
                for name, info in sorted(self._modules.items())
            },
            "functions": functions,
            "classes": classes,
            "locks": locks,
        }

    def iter_lock_sites(self) -> list[LockSite]:
        sites = list(self.module_locks.values())
        for info in self.classes.values():
            sites.extend(info.lock_attrs.values())
        return sorted(sites, key=lambda site: site.identity)


class _FunctionWalker(ast.NodeVisitor):
    """Walk one function body, tracking held locks and executor hops."""

    def __init__(
        self,
        graph: CallGraph,
        mod: _ModuleInfo,
        fn: FunctionInfo,
        nested: dict[str, str],
        executor_wrappers: frozenset[str],
    ) -> None:
        self.graph = graph
        self.mod = mod
        self.fn = fn
        self.nested = nested
        self.executor_wrappers = executor_wrappers
        self.held: list[Acquisition] = []
        self.in_executor = False
        self.local_types = graph._param_types(mod, fn.node)
        for node in _walk_shallow(fn.node):
            self._seed_local_type(node)

    def _seed_local_type(self, node: ast.AST) -> None:
        target: ast.expr | None = None
        resolved: str | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            resolved = self._value_type(node.value)
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            resolved = self.graph._resolve_annotation(
                self.mod, node.annotation
            )
        if (
            isinstance(target, ast.Name)
            and resolved
            and target.id not in self.local_types
        ):
            self.local_types[target.id] = resolved

    def _value_type(self, value: ast.expr) -> str | None:
        if isinstance(value, ast.Name):
            return self.local_types.get(value.id)
        if isinstance(value, ast.Attribute):
            return self._expr_type(value)
        return self.graph._infer_value_type(
            self.mod, self.local_types, value
        )

    # -- type/lock resolution -----------------------------------------

    def _expr_type(self, expr: ast.expr) -> str | None:
        """Class key of the value ``expr`` evaluates to, if inferable."""
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return self.fn.cls
            return self.local_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._expr_type(expr.value)
            if base is not None:
                return self.graph.attr_type(base, expr.attr)
            return None
        if isinstance(expr, ast.Call):
            resolved = self._resolve_callable(expr.func)
            if resolved is None:
                return None
            kind, target = resolved
            if kind == "class":
                return target
            if kind == "func":
                return self.graph.functions[target].returns
        return None

    def _resolve_callable(
        self, expr: ast.expr
    ) -> tuple[str, str] | None:
        """``(kind, target)`` for a callable expression, or ``None``."""
        if isinstance(expr, ast.Attribute):
            receiver = self._expr_type(expr.value)
            if receiver is not None:
                method = self.graph.resolve_method(receiver, expr.attr)
                if method is not None:
                    return "func", method
                return "external", f"?.{expr.attr}"
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        head = dotted.split(".")[0]
        if head in self.nested and "." not in dotted:
            return "func", self.nested[dotted]
        kind, target = self.graph._resolve_fq(self.mod, dotted)
        if kind == "module":
            return None
        return kind, target

    def _lock_site(self, expr: ast.expr) -> LockSite | None:
        """The lock acquired by ``with expr:``, if ``expr`` names one."""
        if isinstance(expr, ast.Attribute):
            receiver = self._expr_type(expr.value)
            if receiver is not None:
                return self.graph.lock_attr(receiver, expr.attr)
            return None
        if isinstance(expr, ast.Name):
            identity = f"{self.fn.module}:{expr.id}"
            return self.graph.module_locks.get(identity)
        return None

    # -- recording -----------------------------------------------------

    def _record_edge(
        self,
        node: ast.expr,
        *,
        callee: str | None = None,
        external: str | None = None,
        via_executor: bool | None = None,
    ) -> None:
        self.fn.calls.append(
            CallSite(
                callee=callee,
                external=external,
                line=node.lineno,
                col=node.col_offset,
                via_executor=(
                    self.in_executor
                    if via_executor is None
                    else via_executor
                ),
                held=tuple(self.held),
            )
        )

    def _record_callable(
        self, func: ast.expr, node: ast.expr, *, via: bool | None = None
    ) -> None:
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            site = self._lock_site(func.value)
            if site is not None:
                self.fn.acquisitions.append(
                    Acquisition(
                        site=site,
                        line=node.lineno,
                        col=node.col_offset,
                        held=tuple(self.held),
                    )
                )
                self._record_edge(
                    node,
                    external="threading.Lock.acquire",
                    via_executor=via,
                )
                return
        resolved = self._resolve_callable(func)
        if resolved is None:
            return
        kind, target = resolved
        if kind == "func":
            self._record_edge(node, callee=target, via_executor=via)
        elif kind == "class":
            init = self.graph.resolve_method(target, "__init__")
            if init is not None:
                self._record_edge(node, callee=init, via_executor=via)
        else:
            self._record_edge(node, external=target, via_executor=via)

    def _is_partial(self, func: ast.expr) -> bool:
        dotted = dotted_name(func)
        if dotted is None:
            return False
        kind, fq = self.graph._resolve_fq(self.mod, dotted)
        return kind == "external" and fq in (
            "functools.partial",
            "partial",
        )

    def _launder_arg(self, arg: ast.expr) -> None:
        """An argument handed to an executor wrapper: runs off-loop."""
        if isinstance(arg, ast.Lambda):
            previous = self.in_executor
            self.in_executor = True
            self.visit(arg.body)
            self.in_executor = previous
            return
        if isinstance(arg, (ast.Name, ast.Attribute)):
            self._record_callable(arg, arg, via=True)
            if isinstance(arg, ast.Attribute):
                self.visit(arg.value)
            return
        if isinstance(arg, ast.Call) and self._is_partial(arg.func):
            if arg.args:
                self._launder_arg(arg.args[0])
                for extra in arg.args[1:]:
                    self.visit(extra)
            for keyword in arg.keywords:
                self.visit(keyword.value)
            return
        self.visit(arg)

    # -- visitors ------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return  # nested defs are their own FunctionInfo

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef
    ) -> None:
        return

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.visit(node.body)  # inline: runs in the enclosing context

    def visit_With(self, node: ast.With) -> None:
        acquired: list[Acquisition] = []
        for item in node.items:
            site = self._lock_site(item.context_expr)
            if site is not None:
                acquisition = Acquisition(
                    site=site,
                    line=item.context_expr.lineno,
                    col=item.context_expr.col_offset,
                    held=tuple(self.held) + tuple(acquired),
                )
                self.fn.acquisitions.append(acquisition)
                acquired.append(acquisition)
            else:
                self.visit(item.context_expr)
        self.held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        if acquired:
            del self.held[-len(acquired):]

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        for item in node.items:
            self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        wrapper = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else None
        )
        if wrapper in self.executor_wrappers:
            self._record_callable(func, node)
            if isinstance(func, ast.Attribute):
                self.visit(func.value)
            for arg in node.args:
                self._launder_arg(arg)
            for keyword in node.keywords:
                self._launder_arg(keyword.value)
            return
        if self._is_partial(func):
            if node.args:
                self._record_callable(node.args[0], node)
                for extra in node.args[1:]:
                    self.visit(extra)
            for keyword in node.keywords:
                self.visit(keyword.value)
            return
        self._record_callable(func, node)
        if isinstance(func, ast.Attribute):
            self.visit(func.value)
        for arg in node.args:
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        value = node.value
        owner: str | None = None
        is_self = isinstance(value, ast.Name) and value.id == "self"
        if is_self:
            owner = self.fn.cls
        else:
            owner = self._expr_type(value)
        if owner is not None:
            decl = self.graph.guarded_decl(owner, node.attr)
            if decl is not None:
                needed, owner_key = decl
                self.fn.guard_accesses.append(
                    GuardAccess(
                        owner=owner_key,
                        attr=node.attr,
                        needed=needed,
                        line=node.lineno,
                        col=node.col_offset,
                        held=tuple(
                            acq.site.identity for acq in self.held
                        ),
                        cross_class=not is_self,
                    )
                )
            confined_owner = self.graph.confined_decl(owner, node.attr)
            if confined_owner is not None:
                self.fn.confined_accesses.append(
                    ConfinedAccess(
                        owner=confined_owner,
                        attr=node.attr,
                        line=node.lineno,
                        col=node.col_offset,
                    )
                )
            getter = self.graph.property_getter(owner, node.attr)
            if getter is not None:
                self._record_edge(node, callee=getter)
        self.visit(value)


def _is_property(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> bool:
    for decorator in node.decorator_list:
        dotted = dotted_name(decorator)
        if dotted is not None and dotted.split(".")[-1] in (
            _PROPERTY_DECORATORS
        ):
            return True
    return False


def _walk_shallow(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.AST]:
    """All nodes in a function body, not descending into nested defs."""
    found: list[ast.AST] = []
    stack: list[ast.AST] = list(node.body)
    while stack:
        current = stack.pop()
        found.append(current)
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            stack.append(child)
    return found


def dump_callgraph(
    paths: list[str] | None = None, *, config: Any = None
) -> dict[str, Any]:
    """Build the graph over a source tree and return its JSON shape."""
    from repro.lint.engine import collect_contexts

    contexts, _errors, _count = collect_contexts(paths, config=config)
    return CallGraph.build(contexts).to_json()
