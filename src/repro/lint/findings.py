"""Finding model shared by every repro-lint rule and reporter."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordered by ``(path, line, column, code)`` so reports are stable across
    runs and across rule-execution order.
    """

    path: str
    line: int
    column: int
    code: str
    name: str
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column + 1}: "
            f"{self.code} [{self.name}] {self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        """The JSON-reporter shape (``docs/linting.md`` documents it)."""
        return {
            "code": self.code,
            "name": self.name,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
        }
