"""Finding model shared by every repro-lint rule and reporter."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordered by ``(path, line, column, code)`` so reports are stable across
    runs and across rule-execution order.  ``detail`` carries an optional
    multi-line elaboration (interprocedural witness paths, lock-order
    cycles) rendered only under ``--explain``; it never participates in
    ordering or equality and is omitted from the JSON shape when empty.
    """

    path: str
    line: int
    column: int
    code: str
    name: str
    message: str
    detail: str = field(default="", compare=False)

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column + 1}: "
            f"{self.code} [{self.name}] {self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        """The JSON-reporter shape (``docs/linting.md`` documents it)."""
        shape: dict[str, object] = {
            "code": self.code,
            "name": self.name,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
        }
        if self.detail:
            shape["detail"] = self.detail
        return shape
