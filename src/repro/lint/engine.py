"""The repro-lint engine: walk files, run rules, apply suppressions.

One :class:`~repro.lint.context.ModuleContext` is built per file; every
selected rule walks the same tree.  Project rules
(:class:`~repro.lint.registry.ProjectRule`) then run once over *all*
contexts, sharing a single call graph, so interprocedural findings land
in the same per-file suppression pass as everything else.  Inline
suppressions are resolved afterwards so unused markers can be reported
(``RL000``).  Files that do not parse yield a single ``RL900
parse-error`` finding instead of aborting the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import repro.lint.rules  # noqa: F401  (populates the registry)
from repro.lint.config import LintConfig, load_config
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import RULES, ProjectRule, Rule, instantiate_rules
from repro.lint.suppressions import apply_suppressions

PARSE_ERROR_CODE = "RL900"


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))


def module_name_for(path: Path) -> str:
    """Dotted module name, assuming a ``src``-layout checkout."""
    parts = list(path.with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def iter_python_files(paths: list[Path], exclude: list[str]) -> list[Path]:
    excluded = set(exclude)
    files: list[Path] = []
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.append(path)
            continue
        if not path.is_dir():
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part in excluded for part in candidate.parts):
                continue
            files.append(candidate)
    return files


def lint_source(
    source: str,
    *,
    module: str,
    path: str = "<string>",
    rules: list[Rule] | None = None,
    config: LintConfig | None = None,
    select: list[str] | None = None,
) -> LintResult:
    """Lint one in-memory module (the fixture-test entry point)."""
    if rules is None:
        rule_options = config.rule_options if config else {}
        rules = instantiate_rules(rule_options, select)
    result = LintResult(files=1)
    try:
        context = ModuleContext.from_source(source, path=path, module=module)
    except SyntaxError as error:
        result.findings.append(
            Finding(
                path=path,
                line=error.lineno or 1,
                column=(error.offset or 1) - 1,
                code=PARSE_ERROR_CODE,
                name="parse-error",
                message=f"file does not parse: {error.msg}",
            )
        )
        return result
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check(context))
    kept, suppressed = apply_suppressions(context, findings, set(RULES))
    result.findings = sorted(kept)
    result.suppressed = sorted(suppressed)
    return result


def collect_contexts(
    paths: list[str | Path] | None = None,
    *,
    config: LintConfig | None = None,
) -> tuple[list[ModuleContext], list[Finding], int]:
    """Parse a source tree into module contexts.

    Returns ``(contexts, errors, files)`` where ``errors`` are the
    ``RL900`` findings for unreadable/unparseable files (those files
    still count towards ``files``).  Shared by :func:`run_lint` and the
    ``--callgraph-json`` dump.
    """
    if config is None:
        config = load_config()
    if paths:
        roots = [Path(p) for p in paths]
    else:
        roots = [config.root / p for p in config.paths]
    contexts: list[ModuleContext] = []
    errors: list[Finding] = []
    files = 0
    for path in iter_python_files(roots, config.exclude):
        files += 1
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:  # pragma: no cover - unreadable file
            errors.append(
                Finding(
                    path=str(path),
                    line=1,
                    column=0,
                    code=PARSE_ERROR_CODE,
                    name="parse-error",
                    message=f"cannot read file: {error}",
                )
            )
            continue
        try:
            contexts.append(
                ModuleContext.from_source(
                    source,
                    path=str(path),
                    module=module_name_for(path),
                )
            )
        except SyntaxError as error:
            errors.append(
                Finding(
                    path=str(path),
                    line=error.lineno or 1,
                    column=(error.offset or 1) - 1,
                    code=PARSE_ERROR_CODE,
                    name="parse-error",
                    message=f"file does not parse: {error.msg}",
                )
            )
    return contexts, errors, files


def run_lint(
    paths: list[str | Path] | None = None,
    *,
    config: LintConfig | None = None,
    select: list[str] | None = None,
) -> LintResult:
    """Lint files/directories; defaults come from ``[tool.repro-lint]``."""
    if config is None:
        config = load_config()
    rules = instantiate_rules(config.rule_options, select)
    module_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    contexts, errors, files = collect_contexts(paths, config=config)
    total = LintResult(files=files)
    total.findings.extend(errors)
    by_path: dict[str, list[Finding]] = {}
    for context in contexts:
        bucket = by_path.setdefault(context.path, [])
        for rule in module_rules:
            bucket.extend(rule.check(context))
    if project_rules and contexts:
        from repro.lint.callgraph import CallGraph

        graph = CallGraph.build(contexts)
        for rule in project_rules:
            for finding in rule.check_project(contexts, graph):
                by_path.setdefault(finding.path, []).append(finding)
    known = set(RULES)
    context_paths = {context.path for context in contexts}
    for context in contexts:
        kept, suppressed = apply_suppressions(
            context, by_path.get(context.path, []), known
        )
        total.findings.extend(kept)
        total.suppressed.extend(suppressed)
    for path, findings in by_path.items():
        if path not in context_paths:  # pragma: no cover - defensive
            total.findings.extend(findings)
    total.findings.sort()
    total.suppressed.sort()
    return total
