"""The repro-lint engine: walk files, run rules, apply suppressions.

One :class:`~repro.lint.context.ModuleContext` is built per file; every
selected rule walks the same tree.  Inline suppressions are resolved
afterwards so unused markers can be reported (``RL000``).  Files that do
not parse yield a single ``RL900 parse-error`` finding instead of
aborting the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import repro.lint.rules  # noqa: F401  (populates the registry)
from repro.lint.config import LintConfig, load_config
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import RULES, Rule, instantiate_rules
from repro.lint.suppressions import apply_suppressions

PARSE_ERROR_CODE = "RL900"


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))


def module_name_for(path: Path) -> str:
    """Dotted module name, assuming a ``src``-layout checkout."""
    parts = list(path.with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def iter_python_files(paths: list[Path], exclude: list[str]) -> list[Path]:
    excluded = set(exclude)
    files: list[Path] = []
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.append(path)
            continue
        if not path.is_dir():
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part in excluded for part in candidate.parts):
                continue
            files.append(candidate)
    return files


def lint_source(
    source: str,
    *,
    module: str,
    path: str = "<string>",
    rules: list[Rule] | None = None,
    config: LintConfig | None = None,
    select: list[str] | None = None,
) -> LintResult:
    """Lint one in-memory module (the fixture-test entry point)."""
    if rules is None:
        rule_options = config.rule_options if config else {}
        rules = instantiate_rules(rule_options, select)
    result = LintResult(files=1)
    try:
        context = ModuleContext.from_source(source, path=path, module=module)
    except SyntaxError as error:
        result.findings.append(
            Finding(
                path=path,
                line=error.lineno or 1,
                column=(error.offset or 1) - 1,
                code=PARSE_ERROR_CODE,
                name="parse-error",
                message=f"file does not parse: {error.msg}",
            )
        )
        return result
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check(context))
    kept, suppressed = apply_suppressions(context, findings, set(RULES))
    result.findings = sorted(kept)
    result.suppressed = sorted(suppressed)
    return result


def run_lint(
    paths: list[str | Path] | None = None,
    *,
    config: LintConfig | None = None,
    select: list[str] | None = None,
) -> LintResult:
    """Lint files/directories; defaults come from ``[tool.repro-lint]``."""
    if config is None:
        config = load_config()
    if paths:
        roots = [Path(p) for p in paths]
    else:
        roots = [config.root / p for p in config.paths]
    rules = instantiate_rules(config.rule_options, select)
    total = LintResult()
    for path in iter_python_files(roots, config.exclude):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:  # pragma: no cover - unreadable file
            total.findings.append(
                Finding(
                    path=str(path),
                    line=1,
                    column=0,
                    code=PARSE_ERROR_CODE,
                    name="parse-error",
                    message=f"cannot read file: {error}",
                )
            )
            continue
        result = lint_source(
            source,
            module=module_name_for(path),
            path=str(path),
            rules=rules,
        )
        total.findings.extend(result.findings)
        total.suppressed.extend(result.suppressed)
        total.files += 1
    total.findings.sort()
    total.suppressed.sort()
    return total
