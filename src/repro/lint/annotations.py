"""Shared parsing of concurrency annotations in comments.

Two markers are recognised, attached to the physical line of an attribute
assignment (``self.x = ...`` or ``self.x: T = ...``):

``# guarded-by: <lock>``
    The attribute may only be touched while ``self.<lock>`` is held
    (RL003 checks this within a method, RL011 across the call graph).
    Historical spellings ``guarded by`` and ``guarded_by``, with or
    without a ``self.`` prefix on the lock name, parse identically so
    one inconsistent comment cannot silently disable the check.

``# loop-confined``
    The attribute belongs to the owning event loop: it must not be
    touched from code that runs on executor threads (RL011 flags
    accesses reachable through ``run_in_executor``/``to_thread``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.lint.context import ModuleContext

GUARDED_BY_RE = re.compile(
    r"guarded[-_ ]by:?\s*(?:self\.)?([A-Za-z_]\w*)"
)
LOOP_CONFINED_RE = re.compile(r"\bloop-confined\b")
SELF_ATTR_RE = re.compile(r"self\.([A-Za-z_]\w*)")


@dataclass(frozen=True)
class GuardDeclarations:
    """Per-class annotation tables keyed by attribute name."""

    guarded: dict[str, tuple[str, int]]  # attr -> (lock attr, decl line)
    loop_confined: dict[str, int]  # attr -> decl line


def declarations_for_span(
    context: ModuleContext, first_line: int, last_line: int
) -> GuardDeclarations:
    """Collect annotation markers between two physical lines (inclusive).

    The marker must share a line with a ``self.<attr>`` assignment — the
    attribute named there is the one being declared.
    """
    guarded: dict[str, tuple[str, int]] = {}
    loop_confined: dict[str, int] = {}
    for line in range(first_line, last_line + 1):
        comment = context.comments.get(line)
        if comment is None:
            continue
        guard = GUARDED_BY_RE.search(comment)
        confined = LOOP_CONFINED_RE.search(comment)
        if guard is None and confined is None:
            continue
        attr = SELF_ATTR_RE.search(context.line_code(line))
        if attr is None:
            continue  # marker must sit on the attribute's assignment
        if guard is not None:
            guarded[attr.group(1)] = (guard.group(1), line)
        if confined is not None:
            loop_confined[attr.group(1)] = line
    return GuardDeclarations(guarded=guarded, loop_confined=loop_confined)
