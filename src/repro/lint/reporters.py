"""Text and JSON reporters for repro-lint results.

The JSON shape is a stable contract (CI consumes it; tests pin it)::

    {
      "version": 1,
      "files": 42,
      "summary": {"findings": 2, "suppressed": 5, "by_rule": {"RL002": 2}},
      "findings": [
        {"code": "RL002", "name": "tolerance-discipline",
         "message": "...", "path": "src/...", "line": 10, "column": 4}
      ]
    }
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult

JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult, *, explain: bool = False) -> str:
    lines: list[str] = []
    for finding in result.findings:
        lines.append(finding.format())
        if explain and finding.detail:
            lines.extend(
                "    " + detail_line
                for detail_line in finding.detail.splitlines()
            )
    summary = (
        f"{len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{result.files} file(s) checked"
    )
    if result.findings:
        by_rule = ", ".join(
            f"{code}: {count}" for code, count in result.by_rule().items()
        )
        summary += f" [{by_rule}]"
    lines.append(summary)
    return "\n".join(lines)


def to_dict(result: LintResult) -> dict[str, object]:
    return {
        "version": JSON_SCHEMA_VERSION,
        "files": result.files,
        "summary": {
            "findings": len(result.findings),
            "suppressed": len(result.suppressed),
            "by_rule": result.by_rule(),
        },
        "findings": [finding.to_dict() for finding in result.findings],
    }


def render_json(result: LintResult) -> str:
    return json.dumps(to_dict(result), indent=2, sort_keys=True)
