"""Configuration loading for repro-lint (``[tool.repro-lint]``).

The engine works with built-in defaults when no ``pyproject.toml`` is
found *or* when no TOML parser is available (Python 3.10 without
``tomli``): the shipped defaults mirror the repository's committed
configuration, so the self-check stays green on every supported
interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

try:
    import tomllib as _toml
except ModuleNotFoundError:  # pragma: no cover - Python 3.10
    try:
        import tomli as _toml  # type: ignore[import-not-found,no-redef]
    except ModuleNotFoundError:
        _toml = None  # type: ignore[assignment]

DEFAULT_PATHS = ["src"]
DEFAULT_EXCLUDE = ["tests", ".git", "__pycache__", "build", "dist"]


@dataclass
class LintConfig:
    """Resolved lint configuration (defaults merged with pyproject)."""

    paths: list[str] = field(default_factory=lambda: list(DEFAULT_PATHS))
    exclude: list[str] = field(default_factory=lambda: list(DEFAULT_EXCLUDE))
    rule_options: dict[str, dict[str, Any]] = field(default_factory=dict)
    root: Path = field(default_factory=Path.cwd)


def _normalise_keys(options: dict[str, Any]) -> dict[str, Any]:
    """TOML keys use dashes; rule options use underscores."""
    return {key.replace("-", "_"): value for key, value in options.items()}


def find_pyproject(start: Path) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    current = start.resolve()
    for candidate in [current, *current.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(
    pyproject: Path | None = None, start: Path | None = None
) -> LintConfig:
    """Load ``[tool.repro-lint]`` from ``pyproject`` (or discover it).

    Missing file, missing table, or missing TOML parser all degrade to
    the built-in defaults rather than failing the run.
    """
    if pyproject is None:
        pyproject = find_pyproject(start or Path.cwd())
    config = LintConfig()
    if pyproject is None or _toml is None:
        return config
    config.root = pyproject.parent
    try:
        with open(pyproject, "rb") as handle:
            data = _toml.load(handle)
    except (OSError, ValueError):  # pragma: no cover - unreadable file
        return config
    table = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(table, dict):
        return config
    if isinstance(table.get("paths"), list):
        config.paths = [str(p) for p in table["paths"]]
    if isinstance(table.get("exclude"), list):
        config.exclude = [str(p) for p in table["exclude"]]
    rules = table.get("rules", {})
    if isinstance(rules, dict):
        for code, options in rules.items():
            if isinstance(options, dict):
                config.rule_options[code.lower()] = _normalise_keys(options)
    return config
