"""Interprocedural effect summaries over the project call graph.

Three summaries are computed to a fixpoint over
:class:`~repro.lint.callgraph.CallGraph`:

* **blocking** — for each sync function, the set of blocking primitives
  it can reach (os.fsync, time.sleep, lock acquisition, WAL appends,
  ...) with a shortest witness chain of call sites.  Edges marked
  ``via_executor`` are *not* followed: work handed to
  ``run_in_executor``/``to_thread`` leaves the event loop.  Calling an
  ``async def`` from sync code only builds a coroutine, so those edges
  are skipped too.
* **locks** — for each function, every lock it may transitively
  acquire, with a witness chain.  All resolved edges are followed
  (executor hops included: a lock taken on a worker thread still
  participates in deadlock cycles).
* **guard exposure** — per class, which ``guarded-by:`` attributes a
  method can touch without the lock, attributed through self-calls so a
  public entry point is charged for a helper's unlocked access unless
  every path in holds the lock.

Recursive cycles in the graph are cut by treating an in-progress callee
as empty (a fixpoint under-approximation documented in
``docs/linting.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lint.callgraph import (
    Acquisition,
    CallGraph,
    CallSite,
    FunctionInfo,
)

#: pattern -> human label.  Three pattern forms: exact dotted externals
#: ("os.fsync"), any-receiver method names ("?.read_text"), and
#: project-qualified methods ("Class.method", matched against resolved
#: callee qualnames).
DEFAULT_BLOCKING_CALLS: dict[str, str] = {
    "os.fsync": "os.fsync",
    "os.fdatasync": "os.fdatasync",
    "time.sleep": "time.sleep",
    "open": "blocking file open",
    "socket.create_connection": "blocking socket connect",
    "subprocess.run": "subprocess.run",
    "subprocess.check_call": "subprocess.check_call",
    "subprocess.check_output": "subprocess.check_output",
    "?.read_text": "blocking file read (Path.read_text)",
    "?.write_text": "blocking file write (Path.write_text)",
    "?.read_bytes": "blocking file read (Path.read_bytes)",
    "?.write_bytes": "blocking file write (Path.write_bytes)",
    "?.recv": "blocking socket recv",
    "?.sendall": "blocking socket sendall",
    "?.accept": "blocking socket accept",
    "WriteAheadLog.append": "fsync'd WAL append",
    "WriteAheadLog.close": "fsync'd WAL seal",
    "WriteAheadLog.resume_at": "fsync'd WAL resume",
    "DurablePlatform.submit": "durable apply (WAL + fsync)",
    "DurablePlatform.publish_plans": "durable publish (snapshot)",
    "DurablePlatform.recover": "durable recovery replay",
    "DurablePlatform.close": "durable close (seal + snapshot)",
}

LOCK_ACQUIRE_LABEL = "threading lock acquire"


@dataclass(frozen=True)
class Effect:
    """One blocking primitive reachable from a function."""

    label: str  # human description of the primitive
    site: tuple[str, int]  # (path, line) of the primitive itself
    chain: tuple[tuple[str, str, int], ...]  # (qualname, path, call line)


@dataclass(frozen=True)
class OrderEdge:
    """Observed acquisition order: ``first`` held while taking ``second``."""

    first: str
    second: str
    function: str  # qualname of the function holding ``first``
    witness: tuple[tuple[str, int], ...]  # (path, line) hops to 2nd lock


@dataclass(frozen=True)
class Exposure:
    """A guarded attribute reachable without its lock from a method."""

    owner: str  # class key owning the attribute
    attr: str
    needed: str  # lock identity
    site: tuple[str, int]  # where the unlocked access happens
    chain: tuple[tuple[str, str, int], ...]  # call hops from the method


def _match_blocking(
    patterns: dict[str, str],
    call: CallSite,
    graph: CallGraph,
) -> str | None:
    """The blocking label for a call site, or ``None``."""
    if call.external is not None:
        if call.external in patterns:
            return patterns[call.external]
        tail = call.external.split(".")[-1]
        if f"?.{tail}" in patterns:
            return patterns[f"?.{tail}"]
        return None
    if call.callee is not None:
        fn = graph.functions.get(call.callee)
        if fn is None:
            return None
        if fn.qualname in patterns:
            return patterns[fn.qualname]
    return None


class InterproceduralAnalysis:
    """Memoised fixpoint summaries over one call graph."""

    def __init__(
        self,
        graph: CallGraph,
        *,
        blocking_calls: dict[str, str] | None = None,
        exempt_methods: frozenset[str] = frozenset(
            {"__init__", "__del__", "__new__"}
        ),
    ) -> None:
        self.graph = graph
        self.blocking_calls = (
            DEFAULT_BLOCKING_CALLS
            if blocking_calls is None
            else blocking_calls
        )
        self.exempt_methods = exempt_methods
        self._blocking: dict[str, dict[tuple[str, tuple[str, int]], Effect]] = {}
        self._blocking_in_progress: set[str] = set()
        self._locks: dict[str, dict[str, Effect]] = {}
        self._locks_in_progress: set[str] = set()
        self._exposures: dict[str, dict[tuple[str, str, tuple[str, int]], Exposure]] = {}
        self._exposures_in_progress: set[str] = set()

    # -- blocking summaries (RL009) ------------------------------------

    def match_blocking(self, call: CallSite) -> str | None:
        """The blocking label for one call site, or ``None``."""
        return _match_blocking(self.blocking_calls, call, self.graph)

    def blocking_effects(self, key: str) -> list[Effect]:
        """Blocking primitives reachable from a *sync* function."""
        return list(self._blocking_summary(key).values())

    def _blocking_summary(
        self, key: str
    ) -> dict[tuple[str, tuple[str, int]], Effect]:
        if key in self._blocking:
            return self._blocking[key]
        if key in self._blocking_in_progress:
            return {}  # cycle: under-approximate while unwinding
        self._blocking_in_progress.add(key)
        fn = self.graph.functions[key]
        summary: dict[tuple[str, tuple[str, int]], Effect] = {}
        for acq in fn.acquisitions:
            effect = Effect(
                label=(
                    f"{LOCK_ACQUIRE_LABEL} ({acq.site.identity})"
                ),
                site=(fn.path, acq.line),
                chain=(),
            )
            summary.setdefault((effect.label, effect.site), effect)
        for call in fn.calls:
            if call.via_executor:
                continue  # laundered: runs off the event loop
            label = _match_blocking(self.blocking_calls, call, self.graph)
            if label is not None:
                effect = Effect(
                    label=label, site=(fn.path, call.line), chain=()
                )
                summary.setdefault((effect.label, effect.site), effect)
                continue
            if call.callee is None:
                continue
            callee = self.graph.functions.get(call.callee)
            if callee is None or callee.is_async:
                continue  # calling async builds a coroutine only
            hop = (callee.qualname, fn.path, call.line)
            for sub in self._blocking_summary(call.callee).values():
                effect = Effect(
                    label=sub.label,
                    site=sub.site,
                    chain=(hop,) + sub.chain,
                )
                summary.setdefault((effect.label, effect.site), effect)
        self._blocking_in_progress.discard(key)
        self._blocking[key] = summary
        return summary

    # -- lock summaries (RL010) ----------------------------------------

    def lock_summary(self, key: str) -> dict[str, Effect]:
        """Lock identities transitively acquirable from a function."""
        if key in self._locks:
            return self._locks[key]
        if key in self._locks_in_progress:
            return {}
        self._locks_in_progress.add(key)
        fn = self.graph.functions[key]
        summary: dict[str, Effect] = {}
        for acq in fn.acquisitions:
            summary.setdefault(
                acq.site.identity,
                Effect(
                    label=acq.site.identity,
                    site=(fn.path, acq.line),
                    chain=(),
                ),
            )
        for call in fn.calls:
            if call.callee is None:
                continue
            callee = self.graph.functions.get(call.callee)
            if callee is None:
                continue
            hop = (callee.qualname, fn.path, call.line)
            for identity, sub in self.lock_summary(call.callee).items():
                summary.setdefault(
                    identity,
                    Effect(
                        label=identity,
                        site=sub.site,
                        chain=(hop,) + sub.chain,
                    ),
                )
        self._locks_in_progress.discard(key)
        self._locks[key] = summary
        return summary

    def order_edges(self) -> list[OrderEdge]:
        """Every observed lock-acquisition-order edge, with witnesses."""
        edges: dict[tuple[str, str], OrderEdge] = {}

        def add(
            first: Acquisition,
            second_id: str,
            fn: FunctionInfo,
            witness: tuple[tuple[str, int], ...],
        ) -> None:
            identity = first.site.identity
            if identity == second_id and first.site.reentrant:
                return  # re-entrant self-acquisition is fine
            pair = (identity, second_id)
            edges.setdefault(
                pair,
                OrderEdge(
                    first=identity,
                    second=second_id,
                    function=fn.qualname,
                    witness=((fn.path, first.line),) + witness,
                ),
            )

        for fn in self.graph.functions.values():
            for acq in fn.acquisitions:
                for first in acq.held:
                    add(
                        first,
                        acq.site.identity,
                        fn,
                        ((fn.path, acq.line),),
                    )
            for call in fn.calls:
                if call.callee is None or not call.held:
                    continue
                for identity, sub in self.lock_summary(
                    call.callee
                ).items():
                    hops = tuple(
                        (path, line) for _, path, line in sub.chain
                    )
                    witness = (
                        ((fn.path, call.line),) + hops + (sub.site,)
                    )
                    for first in call.held:
                        add(first, identity, fn, witness)
        return list(edges.values())

    # -- guarded exposure (RL011) --------------------------------------

    def exposures(self, key: str) -> list[Exposure]:
        """Guarded-attr accesses a method exposes without the lock."""
        return list(self._exposure_summary(key).values())

    def _exposure_summary(
        self, key: str
    ) -> dict[tuple[str, str, tuple[str, int]], Exposure]:
        if key in self._exposures:
            return self._exposures[key]
        if key in self._exposures_in_progress:
            return {}
        self._exposures_in_progress.add(key)
        fn = self.graph.functions[key]
        summary: dict[tuple[str, str, tuple[str, int]], Exposure] = {}
        if fn.name not in self.exempt_methods:
            for access in fn.guard_accesses:
                if access.cross_class:
                    continue  # reported directly by RL011, not propagated
                if access.needed in access.held:
                    continue
                exposure = Exposure(
                    owner=access.owner,
                    attr=access.attr,
                    needed=access.needed,
                    site=(fn.path, access.line),
                    chain=(),
                )
                summary.setdefault(
                    (access.attr, access.needed, exposure.site), exposure
                )
            for call in fn.calls:
                if call.callee is None:
                    continue
                callee = self.graph.functions.get(call.callee)
                if (
                    callee is None
                    or callee.cls is None
                    or callee.cls != fn.cls
                    or callee.name in self.exempt_methods
                ):
                    continue  # only same-class helper attribution
                held = {acq.site.identity for acq in call.held}
                hop = (callee.qualname, fn.path, call.line)
                for sub in self._exposure_summary(call.callee).values():
                    if sub.needed in held:
                        continue  # caller holds the lock across the call
                    exposure = Exposure(
                        owner=sub.owner,
                        attr=sub.attr,
                        needed=sub.needed,
                        site=sub.site,
                        chain=(hop,) + sub.chain,
                    )
                    summary.setdefault(
                        (sub.attr, sub.needed, sub.site), exposure
                    )
        self._exposures_in_progress.discard(key)
        self._exposures[key] = summary
        return summary

    # -- executor taint (loop-confined checking) -----------------------

    def executor_tainted(self) -> set[str]:
        """Functions that can run on executor threads.

        Seeds are the resolved targets of ``via_executor`` edges; the
        set is closed over ordinary sync call edges (an executor thread
        cannot await, so async callees do not propagate taint).
        """
        tainted: set[str] = set()
        queue: list[str] = []
        for fn in self.graph.functions.values():
            for call in fn.calls:
                if call.via_executor and call.callee is not None:
                    queue.append(call.callee)
        while queue:
            key = queue.pop()
            if key in tainted:
                continue
            fn = self.graph.functions.get(key)
            if fn is None or fn.is_async:
                continue
            tainted.add(key)
            for call in fn.calls:
                if call.callee is not None:
                    queue.append(call.callee)
        return tainted


def collect_lock_table(graph: CallGraph) -> dict[str, tuple[str, int]]:
    """``identity -> (path, line)`` for every statically known lock.

    Shared with the runtime lockdep validator
    (:mod:`repro.check.lockdep`), which maps observed allocation sites
    back to these identities to cross-check the declared order table.
    """
    return {
        site.identity: (site.path, site.line)
        for site in graph.iter_lock_sites()
    }


def find_cycles(edges: list[OrderEdge]) -> list[list[OrderEdge]]:
    """Cycles in the lock-order graph (each as a closed edge path).

    Non-reentrant self-loops arrive as 1-edge cycles; longer cycles are
    recovered per strongly connected component via DFS.
    """
    adjacency: dict[str, dict[str, OrderEdge]] = {}
    for edge in edges:
        adjacency.setdefault(edge.first, {})[edge.second] = edge
        adjacency.setdefault(edge.second, {})
    cycles: list[list[OrderEdge]] = []
    for edge in edges:
        if edge.first == edge.second:
            cycles.append([edge])
    for component in _tarjan(adjacency):
        if len(component) < 2:
            continue
        members = set(component)
        start = min(members)
        path = _cycle_path(adjacency, start, members)
        if path:
            cycles.append(path)
    return cycles


def _cycle_path(
    adjacency: dict[str, dict[str, OrderEdge]],
    start: str,
    members: set[str],
) -> list[OrderEdge]:
    """One closed walk through ``start`` inside an SCC."""
    stack: list[tuple[str, list[OrderEdge]]] = [(start, [])]
    seen: set[str] = set()
    while stack:
        node, path = stack.pop()
        for successor in sorted(adjacency.get(node, {})):
            if successor not in members:
                continue
            edge = adjacency[node][successor]
            if successor == start:
                return path + [edge]
            if successor in seen:
                continue
            seen.add(successor)
            stack.append((successor, path + [edge]))
    return []


def _tarjan(
    adjacency: dict[str, dict[str, OrderEdge]]
) -> list[list[str]]:
    """Iterative Tarjan SCC over the lock-order graph."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    for root in sorted(adjacency):
        if root in index:
            continue
        work: list[tuple[str, list[str], int]] = [
            (root, sorted(adjacency[root]), 0)
        ]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors, position = work.pop()
            advanced = False
            while position < len(successors):
                successor = successors[position]
                position += 1
                if successor not in index:
                    work.append((node, successors, position))
                    index[successor] = low[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append(
                        (successor, sorted(adjacency[successor]), 0)
                    )
                    advanced = True
                    break
                if successor in on_stack:
                    low[node] = min(low[node], index[successor])
            if advanced:
                continue
            if low[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return components
