"""Rule base class and the per-rule registry.

A rule is a small class with a ``code`` (``RL001``...), a kebab-case
``name``, ``default_options`` (overridable from ``[tool.repro-lint]`` in
``pyproject.toml``), and a ``check(context)`` method returning findings.
Importing :mod:`repro.lint.rules` populates :data:`RULES`.
"""

from __future__ import annotations

import ast
from typing import Any

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding

RULES: dict[str, type["Rule"]] = {}


class Rule:
    """Base class for repro-lint rules."""

    code: str = "RL000"
    name: str = "unnamed"
    description: str = ""
    default_options: dict[str, Any] = {}

    def __init__(self, options: dict[str, Any] | None = None) -> None:
        merged = dict(self.default_options)
        if options:
            merged.update(options)
        self.options = merged

    def check(self, context: ModuleContext) -> list[Finding]:
        raise NotImplementedError

    def finding(
        self,
        context: ModuleContext,
        node: ast.AST | int,
        message: str,
    ) -> Finding:
        """Build a finding anchored at an AST node (or a bare line number)."""
        if isinstance(node, int):
            line, column = node, 0
        else:
            line = getattr(node, "lineno", 1)
            column = getattr(node, "col_offset", 0)
        return Finding(
            path=context.path,
            line=line,
            column=column,
            code=self.code,
            name=self.name,
            message=message,
        )


class ProjectRule(Rule):
    """A rule that analyses the whole project at once.

    Project rules see every parsed module together (plus the shared
    :class:`~repro.lint.callgraph.CallGraph` the engine builds once per
    run) so they can reason interprocedurally.  ``check`` remains usable
    for single-module fixtures: it builds a one-module graph on the fly.
    Findings are anchored at ordinary source locations, so the usual
    inline suppressions apply.
    """

    def check(self, context: ModuleContext) -> list[Finding]:
        from repro.lint.callgraph import CallGraph

        return self.check_project([context], CallGraph.build([context]))

    def check_project(
        self, contexts: list[ModuleContext], graph: "Any"
    ) -> list[Finding]:
        raise NotImplementedError

    def project_finding(
        self,
        path: str,
        line: int,
        column: int,
        message: str,
        detail: str = "",
    ) -> Finding:
        """Build a finding from raw coordinates (no single-module context)."""
        return Finding(
            path=path,
            line=line,
            column=column,
            code=self.code,
            name=self.name,
            message=message,
            detail=detail,
        )


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (keyed by code)."""
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls
    return cls


def instantiate_rules(
    rule_options: dict[str, dict[str, Any]] | None = None,
    select: list[str] | None = None,
) -> list[Rule]:
    """Build rule instances with config overrides applied.

    ``select`` restricts to the given codes (the unused-suppression check
    always runs in the engine regardless of selection).
    """
    rule_options = rule_options or {}
    rules = []
    for code in sorted(RULES):
        if select is not None and code not in select:
            continue
        rules.append(RULES[code](rule_options.get(code.lower(), {})))
    return rules
