"""Inline suppression markers: ``# repro-lint: ignore[RL001] reason``.

A suppression silences the named rule(s) on its own physical line; a
*standalone* suppression comment (no code on the line) also covers the
immediately following line, so multi-line statements can carry a marker
just above them.  Every suppression must silence at least one finding —
stale markers are themselves reported (``RL000 unused-suppression``), so
a fixed violation cannot leave a lie in the source.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding

SUPPRESSION_RE = re.compile(
    r"repro-lint:\s*ignore\[([A-Za-z0-9_,\s]+)\]\s*(.*)"
)

UNUSED_CODE = "RL000"
UNUSED_NAME = "unused-suppression"


@dataclass
class Suppression:
    """One inline ignore marker and the lines it covers."""

    line: int
    codes: tuple[str, ...]
    reason: str
    covered_lines: tuple[int, ...]
    used_codes: set[str] = field(default_factory=set)

    def matches(self, finding: Finding) -> bool:
        return (
            finding.line in self.covered_lines
            and finding.code in self.codes
        )

    @property
    def unused_codes(self) -> tuple[str, ...]:
        return tuple(c for c in self.codes if c not in self.used_codes)


def parse_suppressions(context: ModuleContext) -> list[Suppression]:
    suppressions = []
    for line, comment in sorted(context.comments.items()):
        match = SUPPRESSION_RE.search(comment)
        if match is None:
            continue
        codes = tuple(
            code.strip().upper()
            for code in match.group(1).split(",")
            if code.strip()
        )
        if not codes:
            continue
        covered = [line]
        if not context.line_code(line).strip():
            covered.append(line + 1)  # standalone marker covers next line
        suppressions.append(
            Suppression(
                line=line,
                codes=codes,
                reason=match.group(2).strip(),
                covered_lines=tuple(covered),
            )
        )
    return suppressions


def apply_suppressions(
    context: ModuleContext,
    findings: list[Finding],
    known_codes: set[str],
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (kept, suppressed) and report stale markers.

    Returns the kept list with any ``RL000`` findings appended: one per
    suppression code that silenced nothing or names an unknown rule.
    ``RL000`` itself cannot be suppressed.
    """
    suppressions = parse_suppressions(context)
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        silencer = next(
            (s for s in suppressions if s.matches(finding)), None
        )
        if silencer is None:
            kept.append(finding)
        else:
            silencer.used_codes.add(finding.code)
            suppressed.append(finding)
    for suppression in suppressions:
        for code in suppression.unused_codes:
            if code not in known_codes:
                message = (
                    f"suppression names unknown rule {code} "
                    "(typo, or the rule was removed?)"
                )
            else:
                message = (
                    f"unused suppression of {code}: no finding on this "
                    "line — delete the stale marker"
                )
            kept.append(
                Finding(
                    path=context.path,
                    line=suppression.line,
                    column=0,
                    code=UNUSED_CODE,
                    name=UNUSED_NAME,
                    message=message,
                )
            )
    return kept, suppressed
