"""Per-module lint context: parsed AST, raw source, and comment map.

Rules never re-read or re-parse files; the engine builds one
:class:`ModuleContext` per module and every rule walks the same tree.
Comments (which :mod:`ast` discards) are recovered with :mod:`tokenize`
so that suppression markers and ``# guarded-by:`` declarations can be
attached to their physical lines.
"""

from __future__ import annotations

import ast
import io
import tokenize
from collections.abc import Iterator
from dataclasses import dataclass, field


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one Python module."""

    path: str
    module: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    comments: dict[int, str] = field(default_factory=dict)

    @classmethod
    def from_source(
        cls, source: str, *, path: str = "<string>", module: str = "<module>"
    ) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            module=module,
            source=source,
            tree=tree,
            lines=source.splitlines(),
            comments=extract_comments(source),
        )

    def segment(self, node: ast.AST) -> str:
        """Exact source text of ``node`` (falls back to ``ast.unparse``)."""
        text = ast.get_source_segment(self.source, node)
        if text is None:
            text = ast.unparse(node)
        return text

    def line_code(self, line: int) -> str:
        """Source of a physical line with any trailing comment stripped."""
        if not 1 <= line <= len(self.lines):
            return ""
        text = self.lines[line - 1]
        comment = self.comments.get(line)
        if comment is not None:
            index = text.rfind("#" + comment)
            if index >= 0:
                text = text[:index]
        return text


def extract_comments(source: str) -> dict[int, str]:
    """Map physical line number to comment text (without the ``#``)."""
    comments: dict[int, str] = {}
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string.lstrip("#")
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        pass  # partial comment map beats failing the whole lint run
    return comments


def module_matches(module: str, prefixes: list[str]) -> bool:
    """Whether ``module`` equals or lives under any of ``prefixes``."""
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


def iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str, ast.ClassDef | None]]:
    """Yield ``(function, qualname, enclosing class)`` for every def.

    Nested defs are reported with a dotted qualname; the enclosing class is
    the *innermost* one (or ``None`` for module-level functions).
    """

    def walk(
        body: list[ast.stmt], prefix: str, cls: ast.ClassDef | None
    ) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str, ast.ClassDef | None]]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                yield node, qualname, cls
                yield from walk(node.body, qualname + ".", cls)
            elif isinstance(node, ast.ClassDef):
                yield from walk(node.body, f"{prefix}{node.name}.", node)

    yield from walk(tree.body, "", None)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def attribute_names(node: ast.AST) -> set[str]:
    """Every ``Attribute.attr`` name appearing anywhere inside ``node``."""
    return {
        child.attr
        for child in ast.walk(node)
        if isinstance(child, ast.Attribute)
    }


def is_abstract_body(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether the body is declaration-only (docstring / pass / raise / ...)."""
    for stmt in node.body:
        if isinstance(stmt, (ast.Pass, ast.Raise)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or Ellipsis
        return False
    return True
