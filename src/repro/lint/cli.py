"""The ``repro-lint`` console entry point (also ``repro-gepc lint``).

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.config import load_config
from repro.lint.engine import run_lint
from repro.lint.registry import RULES
from repro.lint.reporters import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant linter for the GEPC/IEP reproduction: "
            "cache, tolerance, lock, determinism, leak, and telemetry "
            "discipline (see docs/linting.md)"
        ),
    )
    add_lint_arguments(parser)
    return parser


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared by ``repro-lint`` and the ``repro-gepc lint`` subcommand."""
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: [tool.repro-lint] "
        "paths from pyproject.toml, falling back to src/)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (e.g. RL001,RL003)",
    )
    parser.add_argument(
        "--rule", default=None, metavar="CODE",
        help="run a single rule (shorthand for --select CODE)",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print witness paths (blocking chains, lock-order cycles) "
        "under each finding as file:line hops",
    )
    parser.add_argument(
        "--callgraph-json", default=None, metavar="PATH",
        help="also dump the project call graph as JSON to PATH "
        "(see docs/linting.md for the shape)",
    )
    parser.add_argument(
        "--config", default=None, metavar="PYPROJECT",
        help="explicit pyproject.toml to read [tool.repro-lint] from",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def list_rules() -> str:
    lines = []
    for code in sorted(RULES):
        rule = RULES[code]
        lines.append(f"{code} {rule.name}: {rule.description}")
    return "\n".join(lines)


def run(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(list_rules())
        return 0
    select = None
    selected: list[str] = []
    if args.select:
        selected.extend(
            code.strip().upper() for code in args.select.split(",")
        )
    if args.rule:
        selected.append(args.rule.strip().upper())
    if selected:
        select = sorted(set(selected))
        unknown = [code for code in select if code not in RULES]
        if unknown:
            print(
                f"repro-lint: unknown rule code(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(RULES))})",
                file=sys.stderr,
            )
            return 2
    config_path = Path(args.config) if args.config else None
    if config_path is not None and not config_path.is_file():
        print(
            f"repro-lint: config file not found: {config_path}",
            file=sys.stderr,
        )
        return 2
    config = load_config(pyproject=config_path)
    result = run_lint(args.paths or None, config=config, select=select)
    if args.callgraph_json:
        from repro.lint.callgraph import dump_callgraph

        payload = dump_callgraph(args.paths or None, config=config)
        Path(args.callgraph_json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, explain=args.explain))
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    return run(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
