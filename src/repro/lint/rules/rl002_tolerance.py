"""RL002 tolerance-discipline: budget/cost comparisons use the shared slack.

Route costs are maintained by O(1) splice deltas, so the two sides of a
feasibility comparison rarely see bit-identical floats — every budget/cost
comparison must use the *same* tolerance (``repro.core.tolerances``) or a
plan one layer builds can be flagged infeasible by another.  Before PR 3
the solvers used ``1e-9`` while the checker used ``1e-6``; this rule flags
any ordering comparison that mixes a cost-flavoured expression with a raw
tolerance-sized float literal, which is exactly how that bug looked.
"""

from __future__ import annotations

import ast

from repro.lint.context import ModuleContext, module_matches
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

_ORDERING_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


@register
class ToleranceDiscipline(Rule):
    code = "RL002"
    name = "tolerance-discipline"
    description = (
        "budget/cost comparisons must use repro.core.tolerances, not raw "
        "float literals"
    )
    default_options = {
        # Case-insensitive substrings that mark an expression as carrying
        # budget/cost semantics.
        "keywords": ["budget", "route_cost", "cost", "load", "capacit", "fee"],
        # A float literal at most this large (and non-zero) reads as a
        # hand-rolled tolerance.
        "max_literal": 1e-3,
        # The module that *defines* the shared tolerances.
        "exclude_modules": ["repro.core.tolerances"],
    }

    def check(self, context: ModuleContext) -> list[Finding]:
        if module_matches(context.module, self.options["exclude_modules"]):
            return []
        keywords = [str(k).lower() for k in self.options["keywords"]]
        max_literal = float(self.options["max_literal"])
        findings: list[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, _ORDERING_OPS) for op in node.ops):
                continue
            literals = [
                child.value
                for child in ast.walk(node)
                if isinstance(child, ast.Constant)
                and isinstance(child.value, float)
                and 0.0 < abs(child.value) <= max_literal
            ]
            if not literals:
                continue
            text = context.segment(node).lower()
            matched = next((k for k in keywords if k in text), None)
            if matched is None:
                continue
            findings.append(
                self.finding(
                    context,
                    node,
                    f"raw tolerance literal {literals[0]!r} in a "
                    f"'{matched}' comparison — use "
                    "repro.core.tolerances.BUDGET_TOL so builder and "
                    "checker agree on the feasibility boundary "
                    "(the PR-3 mixed-tolerance bug class)",
                )
            )
        return findings
