"""RL009 async-blocking-discipline: no blocking primitives on the loop.

The service stack is a single asyncio loop fronting fsync-heavy durable
platforms; one ``os.fsync`` or contended ``threading.Lock`` reached
from an ``async def`` stalls every tenant at once.  This rule follows
the project call graph from each ``async def`` and flags any path to a
known blocking primitive (``os.fsync``/``fdatasync``, ``time.sleep``,
blocking file/socket I/O, threading-lock acquisition, ``WriteAheadLog``
appends, ``DurablePlatform`` applies) that is not laundered through
``run_in_executor``/``asyncio.to_thread``.  Findings anchor at the call
site inside the ``async def`` so suppressions stay local; ``--explain``
prints the full witness chain.
"""

from __future__ import annotations

from repro.lint.callgraph import CallGraph
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.interproc import (
    DEFAULT_BLOCKING_CALLS,
    Effect,
    InterproceduralAnalysis,
)
from repro.lint.registry import ProjectRule, register


@register
class AsyncBlockingDiscipline(ProjectRule):
    code = "RL009"
    name = "async-blocking-discipline"
    description = (
        "call paths from 'async def' to blocking primitives (fsync, "
        "sleep, lock acquire, WAL append) must hop through "
        "run_in_executor/to_thread"
    )
    default_options = {
        "blocking_calls": dict(DEFAULT_BLOCKING_CALLS),
    }

    def check_project(
        self, contexts: list[ModuleContext], graph: CallGraph
    ) -> list[Finding]:
        analysis = InterproceduralAnalysis(
            graph, blocking_calls=dict(self.options["blocking_calls"])
        )
        findings: list[Finding] = []
        for fn in graph.functions.values():
            if not fn.is_async:
                continue
            seen: set[tuple[int, str, tuple[str, int]]] = set()
            for acq in fn.acquisitions:
                key = (
                    acq.line,
                    acq.site.identity,
                    (fn.path, acq.line),
                )
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    self.project_finding(
                        fn.path,
                        acq.line,
                        acq.col,
                        f"async '{fn.qualname}' acquires threading "
                        f"lock '{acq.site.identity}' on the event "
                        "loop — an uncontended acquire is cheap but "
                        "any contention stalls every coroutine; hop "
                        "through the executor or use asyncio "
                        "primitives",
                    )
                )
            for call in fn.calls:
                if call.via_executor:
                    continue
                label = analysis.match_blocking(call)
                if label is not None:
                    key = (call.line, label, (fn.path, call.line))
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(
                        self.project_finding(
                            fn.path,
                            call.line,
                            call.col,
                            f"async '{fn.qualname}' calls {label} "
                            "directly on the event loop — route it "
                            "through run_in_executor/to_thread",
                        )
                    )
                    continue
                if call.callee is None:
                    continue
                callee = graph.functions.get(call.callee)
                if callee is None or callee.is_async:
                    continue  # async callees are analysed as roots
                for effect in analysis.blocking_effects(call.callee):
                    key = (call.line, effect.label, effect.site)
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(
                        self.project_finding(
                            fn.path,
                            call.line,
                            call.col,
                            f"async '{fn.qualname}' can reach "
                            f"{effect.label} at "
                            f"{effect.site[0]}:{effect.site[1]} via "
                            f"'{callee.qualname}' without an executor "
                            "hop — route the call through "
                            "run_in_executor/to_thread",
                            detail=self._detail(
                                fn.qualname,
                                fn.path,
                                call.line,
                                callee.qualname,
                                effect,
                            ),
                        )
                    )
        return findings

    @staticmethod
    def _detail(
        root: str,
        root_path: str,
        call_line: int,
        first_callee: str,
        effect: Effect,
    ) -> str:
        lines = [
            "blocking path:",
            f"  {root} ({root_path}:{call_line})",
            f"  -> {first_callee}",
        ]
        for qualname, path, line in effect.chain:
            lines.append(f"     calls {qualname} ({path}:{line})")
        lines.append(
            f"  blocks at {effect.label} "
            f"({effect.site[0]}:{effect.site[1]})"
        )
        return "\n".join(lines)
