"""Rule modules — importing this package populates the registry."""

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    rl001_cache,
    rl002_tolerance,
    rl003_locks,
    rl004_leaks,
    rl005_determinism,
    rl006_obs,
    rl007_shm,
    rl008_dense,
    rl009_async,
    rl010_lockorder,
    rl011_guard_escape,
)
from repro.lint.rules.rl001_cache import CacheDiscipline
from repro.lint.rules.rl002_tolerance import ToleranceDiscipline
from repro.lint.rules.rl003_locks import LockDiscipline
from repro.lint.rules.rl004_leaks import LeakedMutableArray
from repro.lint.rules.rl005_determinism import Determinism
from repro.lint.rules.rl006_obs import ObsCoverage
from repro.lint.rules.rl007_shm import ShmDiscipline
from repro.lint.rules.rl008_dense import DenseMaterialisationDiscipline
from repro.lint.rules.rl009_async import AsyncBlockingDiscipline
from repro.lint.rules.rl010_lockorder import LockOrderDiscipline
from repro.lint.rules.rl011_guard_escape import GuardedByEscape

__all__ = [
    "CacheDiscipline",
    "ToleranceDiscipline",
    "LockDiscipline",
    "LeakedMutableArray",
    "Determinism",
    "ObsCoverage",
    "ShmDiscipline",
    "DenseMaterialisationDiscipline",
    "AsyncBlockingDiscipline",
    "LockOrderDiscipline",
    "GuardedByEscape",
]
