"""RL001 cache-discipline: solver caches are written only by their owners.

The incremental kernel's speed rests on caches (`GlobalPlan._blocked`,
``_route_costs``, ``Instance._distances``, ...) whose every write site is
paired with the bookkeeping that keeps them coherent (``docs/performance.md``,
``docs/correctness.md``).  A write from any other module silently desyncs
them — the exact bug class PR 3's shadow auditor catches *at runtime*; this
rule refuses it at CI time.  Deliberate exceptions (the sharded merge
transplant, the fuzzer's cache eviction) carry inline suppressions with a
reason.
"""

from __future__ import annotations

import ast

from repro.lint.context import ModuleContext, module_matches
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

# Methods that mutate their receiver in place.
_MUTATORS = (
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "discard", "add", "update", "setdefault", "sort", "reverse", "fill",
)


@register
class CacheDiscipline(Rule):
    code = "RL001"
    name = "cache-discipline"
    description = (
        "solver cache attributes may only be written by their owning "
        "modules (or registered mutation hooks)"
    )
    default_options = {
        "attributes": [
            "_distances", "_conflicts", "_conflict_matrix",
            "_event_starts", "_fee_vector",
            "_blocked", "_route_costs", "_plans", "_attendance",
            "_attendee_sets", "_kernel_cache",
        ],
        "allow_modules": ["repro.core.model", "repro.core.plan"],
        "allow_functions": ["_from_validated", "__setstate__"],
        "mutators": list(_MUTATORS),
    }

    def check(self, context: ModuleContext) -> list[Finding]:
        if module_matches(context.module, self.options["allow_modules"]):
            return []
        attributes = set(self.options["attributes"])
        mutators = set(self.options["mutators"])
        allow_functions = set(self.options["allow_functions"])
        rule = self

        class Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                self.findings: list[Finding] = []
                self.seen: set[tuple[int, str]] = set()

            def report(self, node: ast.AST, attr: str, how: str) -> None:
                key = (getattr(node, "lineno", 0), attr)
                if key in self.seen:
                    return
                self.seen.add(key)
                self.findings.append(
                    rule.finding(
                        context,
                        node,
                        f"{how} solver cache `{attr}` outside its owning "
                        "module — go through the owning class's API so the "
                        "dependent caches stay coherent (docs/correctness.md)",
                    )
                )

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                if node.name in allow_functions:
                    return  # trusted construction/restore paths
                self.generic_visit(node)

            visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

            def _check_target(self, node: ast.AST, target: ast.AST) -> None:
                for child in ast.walk(target):
                    if (
                        isinstance(child, ast.Attribute)
                        and child.attr in attributes
                    ):
                        self.report(node, child.attr, "write to")

            def visit_Assign(self, node: ast.Assign) -> None:
                for target in node.targets:
                    self._check_target(node, target)
                self.generic_visit(node)

            def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
                self._check_target(node, node.target)
                self.generic_visit(node)

            def visit_AugAssign(self, node: ast.AugAssign) -> None:
                self._check_target(node, node.target)
                self.generic_visit(node)

            def visit_Delete(self, node: ast.Delete) -> None:
                for target in node.targets:
                    self._check_target(node, target)
                self.generic_visit(node)

            def visit_Call(self, node: ast.Call) -> None:
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in mutators:
                    for child in ast.walk(func.value):
                        if (
                            isinstance(child, ast.Attribute)
                            and child.attr in attributes
                        ):
                            self.report(
                                node, child.attr, f"in-place `{func.attr}` on"
                            )
                self.generic_visit(node)

        visitor = Visitor()
        visitor.visit(context.tree)
        return visitor.findings
