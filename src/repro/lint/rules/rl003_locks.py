"""RL003 lock-discipline: ``# guarded-by:`` attributes stay under their lock.

Concurrency state is declared at its ``__init__`` assignment::

    self._pending: list[Op] = []  # guarded-by: _queue_lock

and from then on every ``self._pending`` access anywhere in the class must
sit inside ``with self._queue_lock:`` (any enclosing ``with`` on the named
lock counts, so nested lock scopes work).  ``__init__``/``__del__`` are
exempt — no second thread can hold the object yet/any more.  This encodes
the locking contract of ``BatchedPlatform``/``ShardedSolver`` that the
PR-4 concurrency tests can only probe, not prove.
"""

from __future__ import annotations

import ast

from repro.lint.annotations import (
    GUARDED_BY_RE,
    SELF_ATTR_RE,
    declarations_for_span,
)
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

__all__ = ["GUARDED_BY_RE", "SELF_ATTR_RE", "LockDiscipline"]


@register
class LockDiscipline(Rule):
    code = "RL003"
    name = "lock-discipline"
    description = (
        "attributes declared '# guarded-by: <lock>' must be accessed "
        "under 'with self.<lock>:'"
    )
    default_options = {
        "exempt_methods": ["__init__", "__del__", "__new__"],
    }

    def check(self, context: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for cls in ast.walk(context.tree):
            if isinstance(cls, ast.ClassDef):
                findings.extend(self._check_class(context, cls))
        return findings

    def _declarations(
        self, context: ModuleContext, cls: ast.ClassDef
    ) -> dict[str, tuple[str, int]]:
        """``attr -> (lock, declaration line)`` from guarded-by comments.

        Parsing is shared with RL011 (:mod:`repro.lint.annotations`) so
        every historical spelling of the marker binds identically in
        the intra- and interprocedural checks.
        """
        end = cls.end_lineno or cls.lineno
        return declarations_for_span(context, cls.lineno, end).guarded

    def _check_class(
        self, context: ModuleContext, cls: ast.ClassDef
    ) -> list[Finding]:
        declarations = self._declarations(context, cls)
        if not declarations:
            return []
        exempt = set(self.options["exempt_methods"])
        rule = self

        class Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                self.findings: list[Finding] = []
                self.held: list[str] = []

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                if node.name in exempt:
                    return
                self.generic_visit(node)

            visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

            def visit_ClassDef(self, node: ast.ClassDef) -> None:
                return  # nested classes declare their own contracts

            def _locks_of(self, item: ast.withitem) -> str | None:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                ):
                    return expr.attr
                return None

            def visit_With(self, node: ast.With) -> None:
                acquired = [
                    lock
                    for lock in map(self._locks_of, node.items)
                    if lock is not None
                ]
                self.held.extend(acquired)
                self.generic_visit(node)
                del self.held[len(self.held) - len(acquired):]

            visit_AsyncWith = visit_With  # type: ignore[assignment]

            def visit_Attribute(self, node: ast.Attribute) -> None:
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in declarations
                ):
                    lock, declared_at = declarations[node.attr]
                    if lock not in self.held:
                        self.findings.append(
                            rule.finding(
                                context,
                                node,
                                f"self.{node.attr} is guarded by "
                                f"self.{lock} (declared at line "
                                f"{declared_at}) but accessed without "
                                "holding it — wrap the access in "
                                f"'with self.{lock}:'",
                            )
                        )
                self.generic_visit(node)

        visitor = Visitor()
        for statement in cls.body:
            visitor.visit(statement)
        return visitor.findings
