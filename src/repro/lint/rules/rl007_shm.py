"""RL007 shm-discipline: shared-memory segments only via the lifecycle manager.

``repro.core.shm`` owns every ``multiprocessing.shared_memory`` segment in
the repo: :class:`PlaneManager` creates (and exactly-once unlinks) them,
:func:`attach_plane` opens them without resource-tracker registration, and
``weakref.finalize`` + ``atexit`` guarantee teardown even on crash paths.
A raw ``SharedMemory(...)`` constructed anywhere else bypasses all of
that — the segment has no owner, the resource tracker double-registers it
under fork pools, and a worker death leaks it in ``/dev/shm`` forever.

The rule therefore flags, outside the owning module:

* any call whose target is ``SharedMemory`` (bare or dotted, however the
  module was imported or aliased);
* any ``import multiprocessing.shared_memory`` /
  ``from multiprocessing.shared_memory import ...`` — importing the
  module at all is the tell that a call site is about to go around the
  manager.

See ``docs/linting.md`` and the module docstring of ``repro/core/shm.py``.
"""

from __future__ import annotations

import ast

from repro.lint.context import ModuleContext, dotted_name, module_matches
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

_SHM_MODULE = "multiprocessing.shared_memory"


@register
class ShmDiscipline(Rule):
    code = "RL007"
    name = "shm-discipline"
    description = (
        "shared-memory segments must go through repro.core.shm's lifecycle "
        "manager, never raw SharedMemory(...) at call sites"
    )
    default_options = {
        "modules": ["repro"],
        "allow_modules": ["repro.core.shm"],
    }

    def check(self, context: ModuleContext) -> list[Finding]:
        if not module_matches(context.module, self.options["modules"]):
            return []
        if module_matches(context.module, self.options["allow_modules"]):
            return []
        findings: list[Finding] = []
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is not None and (
                    dotted == "SharedMemory"
                    or dotted.endswith(".SharedMemory")
                ):
                    findings.append(
                        self.finding(
                            context,
                            node,
                            f"raw `{dotted}(...)` bypasses the segment "
                            "lifecycle manager — use PlaneManager.share / "
                            "attach_plane from repro.core.shm so the "
                            "segment is tracked, finalized, and unlinked "
                            "exactly once",
                        )
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == _SHM_MODULE or alias.name.startswith(
                        _SHM_MODULE + "."
                    ):
                        findings.append(self._import_finding(context, node))
            elif isinstance(node, ast.ImportFrom):
                if node.module == _SHM_MODULE or (
                    node.module == "multiprocessing"
                    and any(
                        alias.name == "shared_memory"
                        for alias in node.names
                    )
                ):
                    findings.append(self._import_finding(context, node))
        return findings

    def _import_finding(
        self, context: ModuleContext, node: ast.AST
    ) -> Finding:
        return self.finding(
            context,
            node,
            "importing multiprocessing.shared_memory outside "
            "repro.core.shm — segment creation and attachment belong to "
            "the lifecycle manager (PlaneManager / attach_plane)",
        )
