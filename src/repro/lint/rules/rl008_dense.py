"""RL008 dense-materialisation-discipline: no full distance planes.

The tiled distance backend (``repro.core.tiles``) exists so that peak
memory follows the solver's working set instead of the instance size;
its ``user_event_matrix`` property deliberately raises.  Any call site
that reads the full ``O(n_users x n_events)`` plane — directly or by
multiplying it into a derived plane — reintroduces the memory wall the
backend removes, and breaks outright under ``REPRO_DISTANCE=tiled``.

The rule flags any ``<expr>.user_event_matrix`` attribute access outside
the geometry layer (``repro.geo``, which *owns* dense planes — the dense
backend is the bit-exactness oracle) and the tiled backend itself
(whose property implements the raise).  Sites that are provably on a
dense-only branch (an oracle comparison, a dense-baseline bench) carry
an inline ``# repro-lint: ignore[RL008] <reason>`` suppression instead.

``event_event_matrix`` is *not* flagged: events number thousands where
users number millions, so the ``O(m^2)`` block is not the memory wall
and stays dense under both backends.

See ``docs/linting.md`` and ``docs/memory.md``.
"""

from __future__ import annotations

import ast

from repro.lint.context import ModuleContext, module_matches
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

_DENSE_PLANE_ATTR = "user_event_matrix"


@register
class DenseMaterialisationDiscipline(Rule):
    code = "RL008"
    name = "dense-materialisation-discipline"
    description = (
        "the full user-event distance plane must never be materialised "
        "outside the geometry layer — serve through user_event / "
        "user_event_row / user_event_rows so the tiled backend scales"
    )
    default_options = {
        "modules": ["repro"],
        "allow_modules": ["repro.geo", "repro.core.tiles"],
    }

    def check(self, context: ModuleContext) -> list[Finding]:
        if not module_matches(context.module, self.options["modules"]):
            return []
        if module_matches(context.module, self.options["allow_modules"]):
            return []
        findings: list[Finding] = []
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == _DENSE_PLANE_ATTR
            ):
                findings.append(
                    self.finding(
                        context,
                        node,
                        f"`.{_DENSE_PLANE_ATTR}` materialises the full "
                        "O(n_users x n_events) distance plane and raises "
                        "under REPRO_DISTANCE=tiled — serve through "
                        "user_event / user_event_row / user_event_rows, "
                        "or suppress inline on a provably dense-only "
                        "oracle branch",
                    )
                )
        return findings
