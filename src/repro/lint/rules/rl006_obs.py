"""RL006 obs-coverage: solver/platform entry points record telemetry.

PR 1 threaded ``repro.obs`` through every hot path precisely so that
regressions show up in traces and the CI bench gate; an entry point that
never touches the recorder is a blind spot — its cost is silently folded
into whichever parent span happens to be open.  Public methods named like
entry points (``solve``, ``apply``, ``submit``, ``flush``, ...) in solver
and platform modules must open a span or emit a counter/gauge (directly,
or by capturing a recorder via ``recording(...)``/``get_recorder()``).
"""

from __future__ import annotations

import ast

from repro.lint.context import (
    ModuleContext,
    is_abstract_body,
    iter_functions,
    module_matches,
)
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

_OBS_ATTRS = {"span", "count", "gauge"}
_OBS_NAMES = {"recording", "get_recorder", "measure"}


@register
class ObsCoverage(Rule):
    code = "RL006"
    name = "obs-coverage"
    description = (
        "public solver/platform entry points must open a repro.obs span "
        "or counter"
    )
    default_options = {
        "modules": [
            "repro.core.gepc", "repro.core.iep", "repro.platform",
            "repro.scale", "repro.baselines", "repro.flow",
        ],
        "entry_points": [
            "solve", "apply", "submit", "publish_plans", "flush",
            "fill", "improve",
        ],
    }

    def check(self, context: ModuleContext) -> list[Finding]:
        if not module_matches(context.module, self.options["modules"]):
            return []
        entry_points = set(self.options["entry_points"])
        findings: list[Finding] = []
        for func, qualname, _ in iter_functions(context.tree):
            if func.name not in entry_points:
                continue
            if is_abstract_body(func):
                continue
            if self._touches_obs(func):
                continue
            if self._is_pure_delegation(func):
                continue
            findings.append(
                self.finding(
                    context,
                    func,
                    f"entry point `{qualname}` never records telemetry — "
                    "open `obs.span(...)` (or emit a counter) around the "
                    "hot phase so traces and the bench gate can see it "
                    "(docs/observability.md)",
                )
            )
        return findings

    @staticmethod
    def _is_pure_delegation(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> bool:
        """A body that only forwards to another call owns no hot phase.

        ``return self._inner.publish_plans(...)`` (optionally under a
        ``with`` for lock scope) should be instrumented in the delegate,
        not at every forwarding shim.
        """
        body = [
            stmt for stmt in func.body
            if not isinstance(stmt, ast.Expr)
            or not isinstance(stmt.value, ast.Constant)  # docstring
        ]
        if len(body) == 1 and isinstance(body[0], ast.With):
            body = body[0].body
        if len(body) != 1:
            return False
        stmt = body[0]
        if isinstance(stmt, ast.Return):
            return isinstance(stmt.value, ast.Call)
        return isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Call
        )

    @staticmethod
    def _touches_obs(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _OBS_ATTRS
            ):
                return True
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in _OBS_NAMES
            ):
                return True
        return False
