"""RL010 lock-order-discipline: one global lock-acquisition order.

The acquisition-order graph is built from ``with <lock>:`` nesting and
from calls made while a lock is held (following the call graph, so a
helper that takes ``_queue_lock`` inherits an edge from every caller
holding ``_state_lock``).  Any cycle is a potential ABBA deadlock.  A
``declared_order`` table (``[tool.repro-lint.rules.rl010]`` in
``pyproject.toml``) additionally pins the sanctioned order for named
locks: an observed edge contradicting the table is a finding even
before a full cycle exists.  ``--explain`` prints each edge of the
offending cycle as a path of ``file:line`` acquisition sites; the
runtime validator in :mod:`repro.check.lockdep` cross-checks the same
table against orders observed during the service fuzz.
"""

from __future__ import annotations

from repro.lint.callgraph import CallGraph
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.interproc import (
    InterproceduralAnalysis,
    OrderEdge,
    find_cycles,
)
from repro.lint.registry import ProjectRule, register


@register
class LockOrderDiscipline(ProjectRule):
    code = "RL010"
    name = "lock-order-discipline"
    description = (
        "the global lock-acquisition-order graph must be acyclic and "
        "respect the declared_order table"
    )
    default_options: dict[str, object] = {
        # Outermost-first lock identities ("module:Class.attr"); an
        # observed acquisition edge running against this order is a
        # finding.  The committed table lives in pyproject.toml.
        "declared_order": [
            "repro.scale.batched:BatchedPlatform._state_lock",
            "repro.scale.batched:BatchedPlatform._queue_lock",
        ],
    }

    def check_project(
        self, contexts: list[ModuleContext], graph: CallGraph
    ) -> list[Finding]:
        analysis = InterproceduralAnalysis(graph)
        edges = analysis.order_edges()
        findings: list[Finding] = []
        for cycle in find_cycles(edges):
            locks = [edge.first for edge in cycle]
            ring = " -> ".join(locks + [cycle[0].first])
            anchor = cycle[0].witness[0]
            findings.append(
                self.project_finding(
                    anchor[0],
                    anchor[1],
                    0,
                    f"lock-order cycle (potential deadlock): {ring}",
                    detail=self._cycle_detail(cycle),
                )
            )
        declared = [str(lock) for lock in self.options["declared_order"]]
        rank = {identity: index for index, identity in enumerate(declared)}
        for edge in sorted(edges, key=lambda e: (e.first, e.second)):
            if edge.first not in rank or edge.second not in rank:
                continue
            if rank[edge.first] <= rank[edge.second]:
                continue
            anchor = edge.witness[0]
            findings.append(
                self.project_finding(
                    anchor[0],
                    anchor[1],
                    0,
                    f"'{edge.second}' is declared before "
                    f"'{edge.first}' in the lock-order table, but "
                    f"'{edge.function}' acquires them in the "
                    "opposite order",
                    detail=self._edge_detail(edge),
                )
            )
        return findings

    @staticmethod
    def _edge_detail(edge: OrderEdge) -> str:
        hops = " -> ".join(
            f"{path}:{line}" for path, line in edge.witness
        )
        return (
            f"{edge.first} then {edge.second} in {edge.function}: {hops}"
        )

    @classmethod
    def _cycle_detail(cls, cycle: list[OrderEdge]) -> str:
        lines = ["lock-order cycle:"]
        for edge in cycle:
            lines.append("  " + cls._edge_detail(edge))
        return "\n".join(lines)
