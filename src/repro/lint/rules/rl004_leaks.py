"""RL004 leaked-mutable-array: internal ndarrays leave public APIs locked.

The kernel caches (blocked-counter rows, the dense conflict matrix, the
start/fee vectors) are handed to callers as "treat as read-only" — but a
*writable* return value makes that a comment, not a contract: one stray
``row[j] += 1`` in a caller corrupts the cache for every later query, and
nothing crashes until the shadow auditor happens to compare.  A public
method returning one of these arrays must either ``.copy()`` it or freeze
it (``view.flags.writeable = False`` / ``.setflags(write=False)``, the
``DistanceMatrix.user_event_row`` idiom).

The analysis is intra-procedural and flow-insensitive: a local name
assigned from a tracked cache attribute anywhere in the function is
tainted, a ``.copy()`` in the returned expression cleanses it, and a
function that freezes *any* array is trusted to return the frozen one.
"""

from __future__ import annotations

import ast

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register


def _freezes_an_array(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether the body write-locks some array (flags/setflags idioms)."""
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "writeable"
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr == "flags"
                ):
                    return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "setflags"
        ):
            return True
    return False


def _contains_copy(node: ast.AST) -> bool:
    return any(
        isinstance(child, ast.Call)
        and isinstance(child.func, ast.Attribute)
        and child.func.attr in ("copy", "tolist", "item")
        for child in ast.walk(node)
    )


# Calls that collapse an array read to a scalar (or fresh object): a value
# routed through one of these cannot leak a writable array reference.
_SCALAR_CONVERTERS = frozenset(
    {"bool", "int", "float", "str", "len", "tuple", "list", "dict", "sorted"}
)


def _bound_names(target: ast.AST) -> list[str]:
    """Names *bound* by an assignment target.

    ``clone._cache = value`` stores *into* ``clone`` — it does not bind the
    name ``clone`` to the value — so attribute/subscript targets bind
    nothing; only plain names (possibly inside tuple/list unpacking) do.
    """
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            names.extend(_bound_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _bound_names(target.value)
    return []


@register
class LeakedMutableArray(Rule):
    code = "RL004"
    name = "leaked-mutable-array"
    description = (
        "public methods must not return internal cache ndarrays without "
        "freezing or copying them"
    )
    default_options = {
        # Attribute names whose ndarray values are internal caches.  The
        # DistanceMatrix blocks (_user_event/_event_event) are deliberately
        # absent: their accessor properties sit on the solvers' hottest
        # O(1) path, where a per-call view allocation is measurable — the
        # row accessors expose the frozen-view idiom instead.
        "attributes": [
            "_blocked", "_conflict_matrix", "_event_starts", "_fee_vector",
            "_kernel_cache",
        ],
        # Helper functions that return a write-locked view of their
        # argument; a value routed through one of these is safe to return.
        "freeze_helpers": ["_read_only"],
    }

    def check(self, context: ModuleContext) -> list[Finding]:
        attributes = set(self.options["attributes"])
        findings: list[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            if _freezes_an_array(node):
                continue
            findings.extend(self._check_function(context, node, attributes))
        return findings

    def _check_function(
        self,
        context: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        attributes: set[str],
    ) -> list[Finding]:
        tainted: set[str] = set()
        cleansers = _SCALAR_CONVERTERS | set(self.options["freeze_helpers"])

        def expr_tainted(expr: ast.AST) -> bool:
            if _contains_copy(expr):
                return False
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Name)
                and expr.func.id in cleansers
            ):
                return False
            if isinstance(expr, ast.Attribute) and expr.attr in attributes:
                return True
            if isinstance(expr, ast.Name) and expr.id in tainted:
                return True
            return any(
                expr_tainted(child)
                for child in ast.iter_child_nodes(expr)
            )

        # Two passes: taint can flow through one intermediate assignment
        # chain (a = self._cache.get(u); b = a; return b).
        for _ in range(2):
            for node in ast.walk(func):
                if isinstance(node, ast.Assign) and expr_tainted(node.value):
                    for target in node.targets:
                        tainted.update(_bound_names(target))
                elif (
                    isinstance(node, ast.AnnAssign)
                    and node.value is not None
                    and expr_tainted(node.value)
                    and isinstance(node.target, ast.Name)
                ):
                    tainted.add(node.target.id)

        findings = []
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Return)
                and node.value is not None
                and expr_tainted(node.value)
            ):
                findings.append(
                    self.finding(
                        context,
                        node,
                        f"public `{func.name}` returns an internal cache "
                        "array writable — freeze a view "
                        "(`view.flags.writeable = False`) or return a "
                        "`.copy()` so callers cannot corrupt the cache",
                    )
                )
        return findings
