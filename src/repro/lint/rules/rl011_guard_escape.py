"""RL011 guarded-by-escape: RL003, extended across the call graph.

RL003 proves each *method* keeps ``guarded-by:`` attributes under their
lock; this rule closes the three escape hatches it cannot see:

* a public entry point calling a same-class helper that touches a
  guarded attribute, where no path into the helper holds the lock
  (attribution follows self-calls to a fixpoint, so helpers that are
  *always* called under the lock stay clean);
* direct access to another object's guarded attribute from outside the
  owning class without holding that object's lock (receiver types come
  from the call graph's annotation inference);
* access to a ``# loop-confined`` attribute from code that can run on
  executor threads (anything reachable from a
  ``run_in_executor``/``to_thread``/``run_write`` dispatch).
"""

from __future__ import annotations

from repro.lint.callgraph import CallGraph
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.interproc import Exposure, InterproceduralAnalysis
from repro.lint.registry import ProjectRule, register


@register
class GuardedByEscape(ProjectRule):
    code = "RL011"
    name = "guarded-by-escape"
    description = (
        "'# guarded-by:' attributes must stay under their lock across "
        "function boundaries; '# loop-confined' attributes must stay "
        "off executor threads"
    )
    default_options = {
        "exempt_methods": ["__init__", "__del__", "__new__"],
    }

    def check_project(
        self, contexts: list[ModuleContext], graph: CallGraph
    ) -> list[Finding]:
        exempt = frozenset(self.options["exempt_methods"])
        analysis = InterproceduralAnalysis(graph, exempt_methods=exempt)
        findings: list[Finding] = []
        for fn in graph.functions.values():
            if fn.name in exempt:
                continue
            if fn.cls is not None and self._is_public(fn.name):
                for exposure in analysis.exposures(fn.key):
                    if not exposure.chain:
                        continue  # local unlocked access is RL003's job
                    _, hop_path, hop_line = exposure.chain[0]
                    findings.append(
                        self.project_finding(
                            hop_path,
                            hop_line,
                            0,
                            f"'{fn.qualname}' lets guarded attribute "
                            f"'{exposure.attr}' (guarded by "
                            f"{exposure.needed}) escape: the call "
                            f"path reaches an access at "
                            f"{exposure.site[0]}:{exposure.site[1]} "
                            "with no lock held on any hop",
                            detail=self._exposure_detail(fn.qualname, exposure),
                        )
                    )
            for access in fn.guard_accesses:
                if not access.cross_class:
                    continue
                if access.needed in access.held:
                    continue
                findings.append(
                    self.project_finding(
                        fn.path,
                        access.line,
                        access.col,
                        f"'{fn.qualname}' accesses '{access.attr}' of "
                        f"{access.owner} (guarded by {access.needed}) "
                        "from outside the owning class without "
                        "holding its lock",
                    )
                )
        tainted = analysis.executor_tainted()
        for key in sorted(tainted):
            fn = graph.functions[key]
            if fn.name in exempt:
                continue
            for confined in fn.confined_accesses:
                findings.append(
                    self.project_finding(
                        fn.path,
                        confined.line,
                        confined.col,
                        f"loop-confined attribute '{confined.attr}' of "
                        f"{confined.owner} accessed from "
                        f"'{fn.qualname}', which can run on an "
                        "executor thread (reachable from a "
                        "run_in_executor/to_thread dispatch)",
                    )
                )
        return findings

    @staticmethod
    def _is_public(name: str) -> bool:
        if name.startswith("__") and name.endswith("__"):
            return True  # dunders are called from outside the class
        return not name.startswith("_")

    @staticmethod
    def _exposure_detail(root: str, exposure: Exposure) -> str:
        lines = [f"escape path from {root}:"]
        for qualname, path, line in exposure.chain:
            lines.append(f"  -> {qualname} (called at {path}:{line})")
        lines.append(
            f"  touches {exposure.attr} at "
            f"{exposure.site[0]}:{exposure.site[1]} without "
            f"{exposure.needed}"
        )
        return "\n".join(lines)
