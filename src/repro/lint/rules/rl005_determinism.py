"""RL005 determinism: solver modules seed every RNG and order every set.

The differential fuzzer, the sharded worker-count-independence contract,
and the bench regression gates all assume a solve is a pure function of
``(instance, seed)``.  Two things silently break that inside solver code:

* module-level RNG calls (``random.shuffle``, ``np.random.rand``) or
  seedless constructions (``random.Random()``, ``default_rng()``) — their
  state is process-global and order-dependent;
* iterating a ``set`` (or ``dict.keys()``) straight into a plan or
  ordering decision — set order depends on the hash seed, so two
  identical runs can grab events in different orders.

Seeded generators (``random.Random(seed)``, ``default_rng(seed)``) and
``sorted(...)``-wrapped iterations pass.  The set analysis is
intra-procedural: only iterables built from a set literal/constructor/
``.keys()`` in the same function are tracked.
"""

from __future__ import annotations

import ast

from repro.lint.context import ModuleContext, dotted_name, module_matches
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

_BANNED_RANDOM = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "betavariate", "triangular", "seed",
}
_ALLOWED_NP_RANDOM = {"default_rng", "Generator", "SeedSequence"}
_SEEDED_FACTORIES = {
    "random.Random",
    "np.random.default_rng",
    "numpy.random.default_rng",
}


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in (
            "set", "frozenset"
        ):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
            return True
    return False


@register
class Determinism(Rule):
    code = "RL005"
    name = "determinism"
    description = (
        "solver modules must seed RNGs and must not iterate sets/dict-keys "
        "into ordering decisions"
    )
    default_options = {
        "modules": [
            "repro.core.gepc", "repro.core.iep", "repro.core.repair",
            "repro.scale", "repro.baselines", "repro.platform",
        ],
    }

    def check(self, context: ModuleContext) -> list[Finding]:
        if not module_matches(context.module, self.options["modules"]):
            return []
        findings: list[Finding] = []
        findings.extend(self._check_rng(context))
        findings.extend(self._check_set_iteration(context))
        return findings

    def _check_rng(self, context: ModuleContext) -> list[Finding]:
        findings = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            if dotted in _SEEDED_FACTORIES:
                if not node.args and not node.keywords:
                    findings.append(
                        self.finding(
                            context,
                            node,
                            f"`{dotted}()` without a seed draws entropy "
                            "from the OS — pass the solver's seed so "
                            "reruns are reproducible (docs/correctness.md)",
                        )
                    )
                continue
            head, _, tail = dotted.rpartition(".")
            if head == "random" and tail in _BANNED_RANDOM:
                findings.append(
                    self.finding(
                        context,
                        node,
                        f"module-level `{dotted}(...)` uses process-global "
                        "RNG state — construct `random.Random(seed)` and "
                        "call it instead",
                    )
                )
            elif (
                head in ("np.random", "numpy.random")
                and tail not in _ALLOWED_NP_RANDOM
            ):
                findings.append(
                    self.finding(
                        context,
                        node,
                        f"legacy global-state `{dotted}(...)` — use "
                        "`np.random.default_rng(seed)` so parallel solves "
                        "cannot interleave draws",
                    )
                )
        return findings

    def _check_set_iteration(self, context: ModuleContext) -> list[Finding]:
        findings = []
        seen: set[tuple[int, int]] = set()
        for func in ast.walk(context.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            set_names = {
                name.id
                for node in ast.walk(func)
                if isinstance(node, ast.Assign) and _is_set_expr(node.value)
                for target in node.targets
                for name in ast.walk(target)
                if isinstance(name, ast.Name)
            }

            def flag(iterable: ast.AST) -> None:
                key = (
                    getattr(iterable, "lineno", 0),
                    getattr(iterable, "col_offset", 0),
                )
                if key in seen:
                    return  # nested defs are walked twice
                if _is_set_expr(iterable) or (
                    isinstance(iterable, ast.Name)
                    and iterable.id in set_names
                ):
                    seen.add(key)
                    findings.append(
                        self.finding(
                            context,
                            iterable,
                            "iterating a set/dict-keys feeds hash-seed-"
                            "dependent order into solver decisions — wrap "
                            "the iterable in sorted(...)",
                        )
                    )

            for node in ast.walk(func):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    flag(node.iter)
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp,
                           ast.GeneratorExp)
                ):
                    for generator in node.generators:
                        flag(generator.iter)
        return findings
