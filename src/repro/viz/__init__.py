"""Standalone SVG visualisations of instances and plans (no dependencies)."""

from repro.viz.svg import plan_map_svg, user_timeline_svg

__all__ = ["plan_map_svg", "user_timeline_svg"]
