"""SVG renderers: city plan maps and per-user day timelines.

Pure string building — no plotting dependencies — so examples can drop
shareable artifacts next to the benchmark CSVs.  Two views:

* :func:`plan_map_svg` — the Fig-1 view: users (circles) and events
  (squares, sized by attendance) on the city plane, with route polylines
  for a chosen set of users.
* :func:`user_timeline_svg` — one user's day as a Gantt strip: their
  events as boxes over the time axis.
"""

from __future__ import annotations

from repro.core.model import Instance
from repro.core.plan import GlobalPlan

_PALETTE = (
    "#4878CF", "#D65F5F", "#59A14F", "#B279A2", "#E49444", "#6DCCDA",
)


def _header(width: int, height: int) -> list[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="#fcfcf7"/>',
    ]


def plan_map_svg(
    instance: Instance,
    plan: GlobalPlan | None = None,
    highlight_users: list[int] | None = None,
    width: int = 640,
    height: int = 640,
) -> str:
    """Render the instance (and optionally a plan) as an SVG map string."""
    points = [user.location for user in instance.users]
    points += [event.location for event in instance.events]
    if not points:
        return "\n".join(_header(width, height) + ["</svg>"])
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    span_x = (x_max - x_min) or 1.0
    span_y = (y_max - y_min) or 1.0
    margin = 30.0

    def sx(x: float) -> float:
        return margin + (x - x_min) / span_x * (width - 2 * margin)

    def sy(y: float) -> float:
        # SVG y grows downward; flip so the map reads like Fig 1.
        return height - margin - (y - y_min) / span_y * (height - 2 * margin)

    parts = _header(width, height)

    # Route polylines for highlighted users (under the markers).
    for index, user in enumerate(highlight_users or []):
        if plan is None:
            break
        events = plan.user_plan(user)
        if not events:
            continue
        colour = _PALETTE[index % len(_PALETTE)]
        home = instance.users[user].location
        waypoints = (
            [home]
            + [instance.events[event].location for event in events]
            + [home]
        )
        coordinates = " ".join(
            f"{sx(p.x):.1f},{sy(p.y):.1f}" for p in waypoints
        )
        parts.append(
            f'<polyline points="{coordinates}" fill="none" '
            f'stroke="{colour}" stroke-width="1.5" stroke-dasharray="5,3"/>'
        )

    for user in instance.users:
        parts.append(
            f'<circle cx="{sx(user.location.x):.1f}" '
            f'cy="{sy(user.location.y):.1f}" r="2.5" fill="#555" '
            f'opacity="0.6"><title>user {user.id}</title></circle>'
        )

    for event in instance.events:
        attendance = plan.attendance(event.id) if plan is not None else 0
        size = 6.0 + min(attendance, 30) * 0.5
        held = attendance >= max(event.lower, 1)
        colour = "#59A14F" if held else "#D65F5F"
        x, y = sx(event.location.x), sy(event.location.y)
        parts.append(
            f'<rect x="{x - size / 2:.1f}" y="{y - size / 2:.1f}" '
            f'width="{size:.1f}" height="{size:.1f}" fill="{colour}" '
            f'opacity="0.85"><title>event {event.id}: {attendance} '
            f'attendees (xi={event.lower}, eta={event.upper})</title></rect>'
        )
        parts.append(
            f'<text x="{x + size:.1f}" y="{y:.1f}" font-size="9" '
            f'fill="#333">e{event.id}</text>'
        )

    parts.append("</svg>")
    return "\n".join(parts)


def user_timeline_svg(
    instance: Instance,
    plan: GlobalPlan,
    user: int,
    width: int = 720,
    height: int = 90,
) -> str:
    """Render one user's day as a Gantt strip."""
    events = plan.user_plan(user)
    horizon_start = min((e.start for e in instance.events), default=0.0)
    horizon_end = max((e.end for e in instance.events), default=24.0)
    span = (horizon_end - horizon_start) or 1.0
    margin = 40.0
    lane_y, lane_h = 30.0, 28.0

    def tx(t: float) -> float:
        return margin + (t - horizon_start) / span * (width - 2 * margin)

    parts = _header(width, height)
    parts.append(
        f'<line x1="{margin}" y1="{lane_y + lane_h + 8}" '
        f'x2="{width - margin}" y2="{lane_y + lane_h + 8}" stroke="#999"/>'
    )
    for hour in range(int(horizon_start), int(horizon_end) + 1, 2):
        parts.append(
            f'<text x="{tx(hour):.1f}" y="{height - 8}" font-size="9" '
            f'fill="#666" text-anchor="middle">{hour}h</text>'
        )
    parts.append(
        f'<text x="4" y="{lane_y + lane_h / 2 + 4}" font-size="11" '
        f'fill="#333">u{user}</text>'
    )
    for index, event in enumerate(events):
        spec = instance.events[event]
        colour = _PALETTE[index % len(_PALETTE)]
        x0, x1 = tx(spec.start), tx(spec.end)
        parts.append(
            f'<rect x="{x0:.1f}" y="{lane_y}" width="{max(x1 - x0, 2):.1f}" '
            f'height="{lane_h}" fill="{colour}" opacity="0.8" rx="3">'
            f'<title>event {event}: {spec.start:.1f}-{spec.end:.1f}h, '
            f'utility {instance.utility[user, event]:.2f}</title></rect>'
        )
        parts.append(
            f'<text x="{(x0 + x1) / 2:.1f}" y="{lane_y + lane_h / 2 + 4}" '
            f'font-size="10" fill="#fff" text-anchor="middle">e{event}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
