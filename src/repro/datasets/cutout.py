"""Table-V "cut out" datasets for the scalability sweeps.

The paper builds scalability workloads by removing users and events from a
full dataset; :func:`cutout` does the same on any generated instance, and
:func:`user_sweep` / :func:`event_sweep` produce the exact Table-V grids
(|E| in {20, 50, 100, 200, 500} with default 50; |U| in {200, 500, 1000,
5000} with default 5000).
"""

from __future__ import annotations

import random

import numpy as np

from repro.core.model import Event, Instance, User
from repro.datasets.meetup import MeetupConfig, generate_ebsn

#: Table V grids (defaults in bold in the paper: |E|=50, |U|=5000).
EVENT_GRID: tuple[int, ...] = (20, 50, 100, 200, 500)
USER_GRID: tuple[int, ...] = (200, 500, 1000, 5000)
DEFAULT_EVENTS = 50
DEFAULT_USERS = 5000


def cutout(
    instance: Instance,
    n_users: int,
    n_events: int,
    seed: int = 0,
) -> Instance:
    """A sub-instance with ``n_users`` users and ``n_events`` events.

    Users and events are sampled uniformly without replacement and
    re-indexed; event bounds are clipped so a cut-out instance is never
    trivially infeasible (``xi_j`` at most the retained user count).
    """
    if n_users > instance.n_users or n_events > instance.n_events:
        raise ValueError("cutout cannot grow the instance")
    rng = random.Random(seed)
    kept_users = sorted(rng.sample(range(instance.n_users), n_users))
    kept_events = sorted(rng.sample(range(instance.n_events), n_events))

    users = [
        User(new_id, instance.users[old].location, instance.users[old].budget)
        for new_id, old in enumerate(kept_users)
    ]
    events = []
    for new_id, old in enumerate(kept_events):
        spec = instance.events[old]
        lower = min(spec.lower, n_users)
        events.append(
            Event(
                id=new_id,
                location=spec.location,
                lower=lower,
                upper=max(spec.upper, lower),
                interval=spec.interval,
            )
        )
    utility = instance.utility[np.ix_(kept_users, kept_events)]
    return Instance(users, events, utility)


def _full_instance(seed: int, n_users: int, n_events: int) -> Instance:
    config = MeetupConfig(
        n_users=n_users,
        n_events=n_events,
        n_groups=max(8, n_events // 3),
        n_clusters=6,
        seed=seed,
    )
    return generate_ebsn(config)


def user_sweep(
    grid: tuple[int, ...] = USER_GRID,
    n_events: int = DEFAULT_EVENTS,
    seed: int = 29,
) -> list[tuple[int, Instance]]:
    """Fig 2(a,c)/3(a) workload: vary |U| at fixed |E| (paper default 50).

    All sweep points are cut out of one shared full instance, as the paper
    does, so they differ only in size.
    """
    full = _full_instance(seed, max(grid), n_events)
    return [(n, cutout(full, n, n_events, seed=seed + n)) for n in grid]


def event_sweep(
    grid: tuple[int, ...] = EVENT_GRID,
    n_users: int = DEFAULT_USERS,
    seed: int = 31,
) -> list[tuple[int, Instance]]:
    """Fig 2(b,d)/3(b) workload: vary |E| at fixed |U| (paper default 5000)."""
    full = _full_instance(seed, n_users, max(grid))
    return [(m, cutout(full, n_users, m, seed=seed + m)) for m in grid]
