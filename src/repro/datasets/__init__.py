"""Dataset substrate: synthetic Meetup-like EBSNs.

The paper evaluates on a Meetup crawl (tag, location, and group documents
for four cities — Table IV) that is not redistributable; this package builds
the closest synthetic equivalent (see DESIGN.md section 2):

* :mod:`repro.datasets.tags` — interest-tag vocabulary and the tag-cosine
  utility model of Liu et al. (KDD'12),
* :mod:`repro.datasets.meetup` — the generator: clustered city geography,
  groups with tag profiles, events with conflict-ratio-controlled times,
  and the parameter scheme of She et al. (SIGMOD'15),
* :mod:`repro.datasets.cities` — the four Table-IV city configurations,
* :mod:`repro.datasets.cutout` — the Table-V "cut out" scalability sweeps.
"""

from repro.datasets.cities import CITY_CONFIGS, make_city
from repro.datasets.cutout import cutout, event_sweep, user_sweep
from repro.datasets.io import load_instance, save_instance
from repro.datasets.meetup import MeetupConfig, generate_ebsn
from repro.datasets.scale import ScaleConfig, generate_scale_instance
from repro.datasets.tags import TAG_VOCABULARY, tag_similarity

__all__ = [
    "CITY_CONFIGS",
    "MeetupConfig",
    "ScaleConfig",
    "TAG_VOCABULARY",
    "cutout",
    "event_sweep",
    "generate_ebsn",
    "generate_scale_instance",
    "load_instance",
    "make_city",
    "save_instance",
    "tag_similarity",
    "user_sweep",
]
