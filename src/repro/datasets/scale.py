"""Vectorized generator for soak-scale synthetic EBSN instances.

:func:`repro.datasets.meetup.generate_ebsn` draws every location, tag
set, and utility cell through python-level ``random`` calls — perfect
for Table-IV-shaped workloads (hundreds of users), hopeless for the
memory-soak sizes the tiled distance backend targets (10^5 users and
up, where the n x m python loop alone takes minutes).  This module
generates the same *shape* of instance — clustered city geography,
sparse skewed utility, conflict-controlled times, budget marginals —
entirely through numpy array programs, in O(n + m + nnz) python
operations.

Design choices that matter to the soak:

* **Local mobility** — the city diameter is much larger than the travel
  budgets, so each user can only reach events in or near their home
  district.  That is the regime the spatial candidate index
  (:class:`repro.geo.grid.SpatialCandidateIndex`) is built for, and the
  regime real city-scale EBSNs exhibit.
* **Cluster-aligned interest** — positive utility concentrates on
  events hosted in the user's home district (plus a sprinkle of
  cross-district interest), mirroring how tag similarity correlates
  with geography in the Meetup data.
* **Small dense planes only** — the generator materialises the n x m
  utility plane (the :class:`~repro.core.model.Instance` contract) but
  never an n x m distance plane; distances stay with the backend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import Event, Instance, User
from repro.geo.point import Point
from repro.timeline.interval import Interval


@dataclass(frozen=True)
class ScaleConfig:
    """Knobs of the soak-scale generator.

    Defaults describe a metropolis whose diameter dwarfs individual
    travel budgets: ``budget_range`` is absolute (not
    diameter-relative like :class:`~repro.datasets.meetup.MeetupConfig`),
    so reachability — and with it the candidate-index payoff — is
    governed by cluster geometry, not city size.
    """

    n_users: int = 100_000
    n_events: int = 256
    n_clusters: int = 32
    city_diameter: float = 200.0
    cluster_spread: float = 4.0
    budget_range: tuple[float, float] = (15.0, 40.0)
    # Probability a user holds positive utility for an event in their
    # own district / in any other district.
    home_affinity: float = 0.8
    remote_affinity: float = 0.01
    mean_upper: int = 50
    lower_max: int = 3
    conflict_ratio: float = 0.25
    horizon: float = 24.0
    seed: int = 0


def generate_scale_instance(config: ScaleConfig) -> Instance:
    """Generate a soak-scale instance; O(n + m + nnz) python work."""
    rng = np.random.default_rng(config.seed)
    n, m, k = config.n_users, config.n_events, max(config.n_clusters, 1)

    centres = rng.uniform(0.0, config.city_diameter, size=(k, 2))
    user_cluster = rng.integers(0, k, size=n)
    event_cluster = rng.integers(0, k, size=m)
    user_xy = centres[user_cluster] + rng.normal(
        0.0, config.cluster_spread, size=(n, 2)
    )
    event_xy = centres[event_cluster] + rng.normal(
        0.0, config.cluster_spread, size=(m, 2)
    )
    budgets = rng.uniform(*config.budget_range, size=n)

    # Cluster-aligned sparse utility: home-district events are liked
    # with high probability, everything else rarely.
    same = user_cluster[:, None] == event_cluster[None, :]
    p_like = np.where(same, config.home_affinity, config.remote_affinity)
    liked = rng.random((n, m)) < p_like
    utility = np.zeros((n, m))
    utility[liked] = np.round(rng.uniform(0.05, 1.0, size=int(liked.sum())), 3)

    uppers = np.maximum(
        1,
        np.rint(
            rng.normal(config.mean_upper, config.mean_upper / 5, size=m)
        ).astype(int),
    )
    lowers = np.minimum(uppers, rng.integers(0, config.lower_max + 1, size=m))
    starts, ends = _interval_arrays(rng, config)

    users = [
        User(id=i, location=Point(x, y), budget=b)
        for i, (x, y, b) in enumerate(
            zip(user_xy[:, 0], user_xy[:, 1], budgets)
        )
    ]
    events = [
        Event(
            id=j,
            location=Point(event_xy[j, 0], event_xy[j, 1]),
            lower=int(lowers[j]),
            upper=int(uppers[j]),
            interval=Interval(float(starts[j]), float(ends[j])),
        )
        for j in range(m)
    ]
    return Instance(users, events, utility)


def _interval_arrays(
    rng: np.random.Generator, config: ScaleConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Start/end arrays with roughly ``conflict_ratio`` conflicted events.

    Conflicted events are paired into shared slots (both members overlap);
    the rest get disjoint slots with positive margins, like the meetup
    generator's layout but computed as arrays.
    """
    m = config.n_events
    if m == 0:
        return np.zeros(0), np.zeros(0)
    n_conflicted = int(round(config.conflict_ratio * m))
    n_conflicted -= n_conflicted % 2  # whole pairs only
    n_pairs = n_conflicted // 2
    n_slots = (m - n_conflicted) + n_pairs
    slot_width = config.horizon / max(n_slots, 1)
    slot_of = np.concatenate(
        [
            np.repeat(np.arange(n_pairs), 2),
            np.arange(n_pairs, n_slots),
        ]
    )
    base = slot_of * slot_width
    is_pair_member = np.arange(m) < n_conflicted
    # Pair members share the slot window with jittered starts (always
    # overlapping); singletons sit inside their slot with a margin.
    jitter = np.where(
        is_pair_member,
        rng.uniform(0.0, slot_width * 0.2, size=m),
        slot_width * 0.05,
    )
    duration = np.where(
        is_pair_member,
        slot_width * rng.uniform(0.6, 0.75, size=m),
        slot_width * rng.uniform(0.4, 0.8, size=m),
    )
    starts = base + jitter
    order = rng.permutation(m)
    return starts[order], (starts + duration)[order]
