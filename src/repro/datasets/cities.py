"""The four Table-IV city datasets.

Sizes, mean bounds, and the conflict ratio match the paper exactly:

=========  =====  ===  =========  ==========  ===============
City       |U|    |E|  mean xi    mean eta    conflict ratio
=========  =====  ===  =========  ==========  ===============
Beijing    113    16   10         50          0.25
Vancouver  2012   225  10         50          0.25
Auckland   569    37   10         50          0.25
Singapore  1500   87   10         50          0.25
=========  =====  ===  =========  ==========  ===============

``make_city(name, scale=...)`` shrinks a city proportionally for the
reduced-scale benchmark defaults (pure-Python interpreter costs; see
DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import Instance
from repro.datasets.meetup import MeetupConfig, generate_ebsn


@dataclass(frozen=True)
class CityConfig:
    """Table-IV sizes plus generator seeds/geography per city."""

    name: str
    n_users: int
    n_events: int
    n_clusters: int
    seed: int


CITY_CONFIGS: dict[str, CityConfig] = {
    "beijing": CityConfig("beijing", 113, 16, 5, 11),
    "vancouver": CityConfig("vancouver", 2012, 225, 6, 13),
    "auckland": CityConfig("auckland", 569, 37, 4, 17),
    "singapore": CityConfig("singapore", 1500, 87, 5, 19),
}


def make_city(name: str, scale: float = 1.0) -> Instance:
    """Generate a Table-IV city (optionally scaled down).

    ``scale=1.0`` reproduces the paper's sizes; ``scale=0.1`` keeps 10% of
    users and events (at least 10 users / 4 events) with the same parameter
    distributions.
    """
    try:
        city = CITY_CONFIGS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown city {name!r}; choose from {sorted(CITY_CONFIGS)}"
        ) from None
    if not 0 < scale <= 1:
        raise ValueError("scale must be in (0, 1]")
    config = MeetupConfig(
        n_users=max(10, int(round(city.n_users * scale))),
        n_events=max(4, int(round(city.n_events * scale))),
        n_groups=max(6, int(round(city.n_events * scale / 2))),
        n_clusters=city.n_clusters,
        mean_upper=50,
        mean_lower=10,
        conflict_ratio=0.25,
        seed=city.seed,
    )
    return generate_ebsn(config)
