"""Interest tags and the tag-based utility model.

Meetup users select interest tags at registration; groups carry tag
profiles; events inherit their group's tags.  Following Liu et al. (KDD'12)
and She et al. (ICDE'15), a user's utility for an event is the cosine
similarity between the user's tag set and the event's (group's) tag set —
zero when they share no interests, 1 when they match exactly.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence

#: A Meetup-flavoured interest vocabulary.  Sampling is Zipf-weighted by
#: position, mirroring the heavy-tailed tag popularity of the real platform.
TAG_VOCABULARY: tuple[str, ...] = (
    "hiking", "photography", "technology", "startups", "yoga", "running",
    "board-games", "language-exchange", "live-music", "food-tasting",
    "book-club", "cycling", "meditation", "salsa-dancing", "film",
    "entrepreneurship", "data-science", "travel", "wine", "rock-climbing",
    "painting", "writing", "soccer", "basketball", "volunteering",
    "parenting", "investing", "public-speaking", "karaoke", "chess",
    "gardening", "cooking", "craft-beer", "street-art", "history",
    "astronomy", "robotics", "poetry", "swing-dancing", "ultimate-frisbee",
    "kayaking", "photclub", "vegan", "dogs", "anime", "blockchain",
    "improv", "knitting", "surfing", "tennis", "badminton", "museums",
    "theatre", "jazz", "camping", "trivia", "singles", "networking",
    "coding-dojo", "philosophy",
)


def zipf_weights(n: int, exponent: float = 1.0) -> list[float]:
    """Zipf popularity weights for ranks ``1..n`` (normalised to sum 1)."""
    raw = [1.0 / (rank**exponent) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def sample_tag_set(
    rng: random.Random,
    min_tags: int = 2,
    max_tags: int = 8,
    vocabulary: Sequence[str] = TAG_VOCABULARY,
) -> frozenset[str]:
    """A Zipf-weighted random tag set (distinct tags)."""
    size = rng.randint(min_tags, max_tags)
    weights = zipf_weights(len(vocabulary))
    chosen: set[str] = set()
    # Weighted sampling without replacement via repeated draws.
    while len(chosen) < size:
        chosen.add(rng.choices(vocabulary, weights=weights, k=1)[0])
    return frozenset(chosen)


def tag_similarity(user_tags: frozenset[str], event_tags: frozenset[str]) -> float:
    """Cosine similarity of two binary tag vectors.

    >>> tag_similarity(frozenset({"a", "b"}), frozenset({"b", "c"}))
    0.4999999999999999
    """
    if not user_tags or not event_tags:
        return 0.0
    overlap = len(user_tags & event_tags)
    if overlap == 0:
        return 0.0
    return overlap / math.sqrt(len(user_tags) * len(event_tags))
