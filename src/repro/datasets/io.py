"""Meetup-document serialization: save/load instances as JSON documents.

The paper's dataset (Section V-A) arrives as *documents*: a tag and a
location document per user, a location and group document per event, and a
tag document per group.  This module mirrors that layout so generated
datasets can be archived, diffed, and reloaded:

* ``users.json``   — id, location, budget,
* ``events.json``  — id, location, bounds, times, (optional) fee,
* ``utility.json`` — the dense score matrix,
* ``meta.json``    — cost-model metadata (travel metric, fees enabled).

``save_instance`` writes a directory of those documents; ``load_instance``
reads one back.  Round-tripping is exact up to float representation (tested
in ``tests/test_io.py``).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.costs import CostModel
from repro.core.model import Event, Instance, User
from repro.geo.metrics import metric_by_name
from repro.geo.point import Point
from repro.timeline.interval import Interval

_FORMAT_VERSION = 1


def save_instance(instance: Instance, directory: str | Path) -> Path:
    """Write ``instance`` as a directory of JSON documents.

    Only named geometric metrics serialise; matrix-backed metrics (the
    theory reductions) carry raw distance tables that have no document
    representation.
    """
    try:
        metric_by_name(instance.cost_model.metric.name)
    except ValueError:
        raise ValueError(
            f"cannot serialise instances with a "
            f"{instance.cost_model.metric.name!r} metric"
        ) from None
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    users = [
        {
            "id": user.id,
            "location": [user.location.x, user.location.y],
            "budget": user.budget,
        }
        for user in instance.users
    ]
    events = [
        {
            "id": event.id,
            "location": [event.location.x, event.location.y],
            "lower": event.lower,
            "upper": event.upper,
            "start": event.interval.start,
            "end": event.interval.end,
            "fee": instance.cost_model.fee(event.id),
        }
        for event in instance.events
    ]
    meta = {
        "format_version": _FORMAT_VERSION,
        "metric": instance.cost_model.metric.name,
        "has_fees": instance.cost_model.fees is not None,
        "n_users": instance.n_users,
        "n_events": instance.n_events,
    }

    (directory / "users.json").write_text(json.dumps(users, indent=1))
    (directory / "events.json").write_text(json.dumps(events, indent=1))
    (directory / "utility.json").write_text(
        json.dumps(instance.utility.tolist())
    )
    (directory / "meta.json").write_text(json.dumps(meta, indent=1))
    return directory


def load_instance(directory: str | Path) -> Instance:
    """Read an instance previously written by :func:`save_instance`."""
    directory = Path(directory)
    meta = json.loads((directory / "meta.json").read_text())
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported dataset format version {meta.get('format_version')}"
        )

    users_doc = json.loads((directory / "users.json").read_text())
    events_doc = json.loads((directory / "events.json").read_text())
    utility = np.asarray(
        json.loads((directory / "utility.json").read_text()), dtype=float
    )
    utility = utility.reshape(meta["n_users"], meta["n_events"])

    users = [
        User(
            id=doc["id"],
            location=Point(*doc["location"]),
            budget=doc["budget"],
        )
        for doc in sorted(users_doc, key=lambda d: d["id"])
    ]
    events = []
    fees = []
    for doc in sorted(events_doc, key=lambda d: d["id"]):
        events.append(
            Event(
                id=doc["id"],
                location=Point(*doc["location"]),
                lower=doc["lower"],
                upper=doc["upper"],
                interval=Interval(doc["start"], doc["end"]),
            )
        )
        fees.append(doc.get("fee", 0.0))

    cost_model = CostModel(
        metric=metric_by_name(meta.get("metric", "euclidean")),
        fees=np.asarray(fees) if meta.get("has_fees") else None,
    )
    return Instance(users, events, utility, cost_model)
