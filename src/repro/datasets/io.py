"""Meetup-document serialization: save/load instances as JSON documents.

The paper's dataset (Section V-A) arrives as *documents*: a tag and a
location document per user, a location and group document per event, and a
tag document per group.  This module mirrors that layout so generated
datasets can be archived, diffed, and reloaded:

* ``users.json``   — id, location, budget,
* ``events.json``  — id, location, bounds, times, (optional) fee,
* ``utility.json`` — the dense score matrix,
* ``meta.json``    — cost-model metadata (travel metric, fees enabled).

``save_instance`` writes a directory of those documents; ``load_instance``
reads one back.  Every file is written atomically (tmp + rename via
:mod:`repro.core.fsio`), so a crash mid-save leaves complete old documents
or complete new ones — never a truncated, unparseable JSON file.
Round-tripping is exact up to float representation (tested in
``tests/test_io.py``).

The document builders (:func:`instance_to_documents` /
:func:`instance_from_documents`) are exposed separately so other durable
artifacts — most importantly :mod:`repro.platform.snapshot` — embed the
same schema instead of inventing a second instance encoding.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.costs import CostModel
from repro.core.fsio import atomic_write_text
from repro.core.model import Event, Instance, User
from repro.geo.metrics import metric_by_name
from repro.geo.point import Point
from repro.timeline.interval import Interval

_FORMAT_VERSION = 1


def instance_to_documents(instance: Instance) -> dict:
    """``instance`` as one JSON-ready dict of its document sections.

    Only named geometric metrics serialise; matrix-backed metrics (the
    theory reductions) carry raw distance tables that have no document
    representation.
    """
    try:
        metric_by_name(instance.cost_model.metric.name)
    except ValueError:
        raise ValueError(
            f"cannot serialise instances with a "
            f"{instance.cost_model.metric.name!r} metric"
        ) from None
    users = [
        {
            "id": int(user.id),
            "location": [float(user.location.x), float(user.location.y)],
            "budget": float(user.budget),
        }
        for user in instance.users
    ]
    events = [
        {
            "id": int(event.id),
            "location": [float(event.location.x), float(event.location.y)],
            "lower": int(event.lower),
            "upper": int(event.upper),
            "start": float(event.interval.start),
            "end": float(event.interval.end),
            "fee": float(instance.cost_model.fee(event.id)),
        }
        for event in instance.events
    ]
    meta = {
        "format_version": _FORMAT_VERSION,
        "metric": instance.cost_model.metric.name,
        "has_fees": instance.cost_model.fees is not None,
        "n_users": instance.n_users,
        "n_events": instance.n_events,
    }
    return {
        "users": users,
        "events": events,
        "utility": instance.utility.tolist(),
        "meta": meta,
    }


def instance_from_documents(documents: dict) -> Instance:
    """Rebuild an instance from :func:`instance_to_documents` output."""
    meta = documents["meta"]
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported dataset format version {meta.get('format_version')}"
        )
    utility = np.asarray(documents["utility"], dtype=float)
    utility = utility.reshape(meta["n_users"], meta["n_events"])

    users = [
        User(
            id=doc["id"],
            location=Point(*doc["location"]),
            budget=doc["budget"],
        )
        for doc in sorted(documents["users"], key=lambda d: d["id"])
    ]
    events = []
    fees = []
    for doc in sorted(documents["events"], key=lambda d: d["id"]):
        events.append(
            Event(
                id=doc["id"],
                location=Point(*doc["location"]),
                lower=doc["lower"],
                upper=doc["upper"],
                interval=Interval(doc["start"], doc["end"]),
            )
        )
        fees.append(doc.get("fee", 0.0))

    cost_model = CostModel(
        metric=metric_by_name(meta.get("metric", "euclidean")),
        fees=np.asarray(fees) if meta.get("has_fees") else None,
    )
    return Instance(users, events, utility, cost_model)


def save_instance(instance: Instance, directory: str | Path) -> Path:
    """Write ``instance`` as a directory of JSON documents (atomic)."""
    documents = instance_to_documents(instance)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    atomic_write_text(
        directory / "users.json", json.dumps(documents["users"], indent=1)
    )
    atomic_write_text(
        directory / "events.json", json.dumps(documents["events"], indent=1)
    )
    atomic_write_text(
        directory / "utility.json", json.dumps(documents["utility"])
    )
    atomic_write_text(
        directory / "meta.json", json.dumps(documents["meta"], indent=1)
    )
    return directory


def load_instance(directory: str | Path) -> Instance:
    """Read an instance previously written by :func:`save_instance`."""
    directory = Path(directory)
    return instance_from_documents(
        {
            "meta": json.loads((directory / "meta.json").read_text()),
            "users": json.loads((directory / "users.json").read_text()),
            "events": json.loads((directory / "events.json").read_text()),
            "utility": json.loads((directory / "utility.json").read_text()),
        }
    )
