"""The synthetic Meetup-like EBSN generator.

Reproduces the *marginals* of the paper's Table IV data (see DESIGN.md
section 2 for the substitution rationale):

* **Geography** — users and event venues drawn from a Gaussian-mixture
  "city" with a handful of district clusters.
* **Interests** — users carry Zipf-weighted tag sets; events are created by
  groups that carry tag profiles; utility is tag cosine similarity, so most
  user-event utilities are 0 and the positive ones are skewed — the shape
  real Meetup data produces.
* **Times** — a 24-hour horizon.  The conflict ratio (fraction of events
  with at least one time conflict) is controlled exactly: a ``conflict_ratio``
  fraction of events is laid out in overlapping pairs/triples, the rest in
  pairwise-disjoint slots.
* **Parameters** — budgets uniform over a city-diameter-scaled range and
  upper bounds around a mean of 50, following She et al. (SIGMOD'15);
  lower bounds uniform with mean 10 as in the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.core.model import Event, Instance, User
from repro.datasets.tags import sample_tag_set, tag_similarity
from repro.geo.point import Point
from repro.timeline.interval import Interval


@dataclass
class MeetupConfig:
    """Knobs of the synthetic EBSN generator (defaults match Table IV)."""

    n_users: int = 200
    n_events: int = 30
    n_groups: int = 12
    n_clusters: int = 4
    city_diameter: float = 30.0
    cluster_spread: float = 3.0
    mean_upper: int = 50
    mean_lower: int = 10
    conflict_ratio: float = 0.25
    horizon: float = 24.0
    budget_range: tuple[float, float] = (0.6, 2.0)  # x city diameter
    seed: int = 7
    # Derived utility sparsity check hook (tests use it).
    min_positive_utility_fraction: float = field(default=0.0, repr=False)


def generate_ebsn(config: MeetupConfig) -> Instance:
    """Generate a full synthetic EBSN instance from ``config``."""
    rng = random.Random(config.seed)

    clusters = _district_centres(rng, config)
    user_locations = [_sample_location(rng, clusters, config) for _ in range(config.n_users)]
    event_locations = [_sample_location(rng, clusters, config) for _ in range(config.n_events)]

    user_tags = [sample_tag_set(rng) for _ in range(config.n_users)]
    group_tags = [sample_tag_set(rng, min_tags=3, max_tags=10) for _ in range(max(config.n_groups, 1))]
    event_group = [rng.randrange(len(group_tags)) for _ in range(config.n_events)]

    intervals = _event_intervals(rng, config)
    uppers = [
        max(1, int(round(rng.gauss(config.mean_upper, config.mean_upper / 5))))
        for _ in range(config.n_events)
    ]
    lowers = [
        min(uppers[j], rng.randint(0, 2 * config.mean_lower))
        for j in range(config.n_events)
    ]

    users = [
        User(
            id=i,
            location=user_locations[i],
            budget=rng.uniform(*config.budget_range) * config.city_diameter,
        )
        for i in range(config.n_users)
    ]
    events = [
        Event(
            id=j,
            location=event_locations[j],
            lower=lowers[j],
            upper=uppers[j],
            interval=intervals[j],
        )
        for j in range(config.n_events)
    ]

    utility = np.zeros((config.n_users, config.n_events))
    for i in range(config.n_users):
        for j in range(config.n_events):
            base = tag_similarity(user_tags[i], group_tags[event_group[j]])
            if base > 0.0:
                # Personal affinity noise on top of the tag match.
                utility[i, j] = min(1.0, base * rng.uniform(0.6, 1.0) + rng.uniform(0.0, 0.1))
    return Instance(users, events, utility)


def _district_centres(
    rng: random.Random, config: MeetupConfig
) -> list[Point]:
    return [
        Point(
            rng.uniform(0, config.city_diameter),
            rng.uniform(0, config.city_diameter),
        )
        for _ in range(max(config.n_clusters, 1))
    ]


def _sample_location(
    rng: random.Random, clusters: list[Point], config: MeetupConfig
) -> Point:
    centre = rng.choice(clusters)
    return Point(
        rng.gauss(centre.x, config.cluster_spread),
        rng.gauss(centre.y, config.cluster_spread),
    )


def _event_intervals(
    rng: random.Random, config: MeetupConfig
) -> list[Interval]:
    """Event times with an exactly-controlled conflict ratio.

    ``k = round(conflict_ratio * m)`` events are placed in overlapping
    bundles of 2-3 (each bundle shares a window, so each member conflicts);
    the remaining events are laid out in pairwise-disjoint slots across the
    horizon, separated by strictly positive gaps.
    """
    m = config.n_events
    if m == 0:
        return []
    n_conflicted = int(round(config.conflict_ratio * m))
    if n_conflicted == 1:
        n_conflicted = 2 if m >= 2 else 0

    # Bundle the conflicted events into groups of 2-3.
    bundles: list[int] = []
    remaining = n_conflicted
    while remaining > 0:
        size = 3 if remaining >= 3 and rng.random() < 0.3 else 2
        size = min(size, remaining)
        if size == 1:
            bundles[-1] += 1
            break
        bundles.append(size)
        remaining -= size

    n_slots = (m - n_conflicted) + len(bundles)
    slot_width = config.horizon / max(n_slots, 1)
    slot_starts = [k * slot_width for k in range(n_slots)]
    rng.shuffle(slot_starts)

    intervals: list[Interval] = []
    slot_iter = iter(slot_starts)
    for size in bundles:
        start = next(slot_iter)
        # Members share the window with jittered starts so they all overlap.
        for _ in range(size):
            jitter = rng.uniform(0.0, slot_width * 0.2)
            duration = slot_width * rng.uniform(0.6, 0.75)
            intervals.append(Interval(start + jitter, start + jitter + duration))
    for _ in range(m - n_conflicted):
        start = next(slot_iter)
        duration = slot_width * rng.uniform(0.4, 0.8)
        margin = slot_width * 0.05
        intervals.append(
            Interval(start + margin, start + margin + duration)
        )
    rng.shuffle(intervals)
    return intervals
