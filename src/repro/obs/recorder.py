"""The recorder: named counters, gauges, and nested phase spans.

Two recorder implementations share one duck-typed API:

* :class:`Recorder` — the real thing.  Counters sum, gauges keep the last
  value, and spans aggregate wall-clock time (monotonic ``perf_counter``)
  per *path*: nested spans produce slash-joined keys (``solve/fill``), so
  one aggregate entry exists per unique call-stack position, with call
  counts and total seconds.
* :class:`NullRecorder` — the default.  Every method is a no-op and
  ``span()`` returns one shared, reusable context manager, so instrumented
  hot loops pay only an attribute call when tracing is off.

The *active* recorder is held in a :class:`contextvars.ContextVar`, making
:func:`recording` safe under threads and asyncio tasks::

    from repro.obs import get_recorder, recording

    with recording() as rec:
        solver.solve(instance)          # instrumented code records into rec
    print(rec.counters, rec.span_stats)

Instrumented code only ever does::

    obs = get_recorder()
    with obs.span("greedy.grab"):
        obs.count("greedy.candidates", evaluated)
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass


@dataclass
class SpanStats:
    """Aggregate timing of one span path."""

    calls: int = 0
    seconds: float = 0.0


class _NullSpan:
    """A reusable do-nothing context manager (the off-switch fast path)."""

    __slots__ = ()
    elapsed = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Recorder API with every operation compiled down to nothing."""

    enabled = False

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, amount: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def counter_value(self, name: str) -> float:
        return 0.0


NULL_RECORDER = NullRecorder()


class _Span:
    """One live span: times itself and aggregates into the recorder."""

    __slots__ = ("_recorder", "_name", "_start", "elapsed")

    def __init__(self, recorder: "Recorder", name: str) -> None:
        self._recorder = recorder
        self._name = name
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "_Span":
        self._recorder._push(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.elapsed = time.perf_counter() - self._start
        self._recorder._pop(self.elapsed)
        return False


class Recorder:
    """Collects counters, gauges, and nested span timings."""

    enabled = True

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.span_stats: dict[str, SpanStats] = {}
        self._stack: list[str] = []

    # ------------------------------------------------------------------ #
    # Recording API (shared with NullRecorder)
    # ------------------------------------------------------------------ #

    def span(self, name: str) -> _Span:
        """A context manager timing one phase; nests into slash paths."""
        return _Span(self, name)

    def count(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the named counter (created at zero)."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Record a point-in-time value (last write wins)."""
        self.gauges[name] = float(value)

    def counter_value(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    # ------------------------------------------------------------------ #
    # Span bookkeeping
    # ------------------------------------------------------------------ #

    def _push(self, name: str) -> None:
        self._stack.append(name)

    def _pop(self, elapsed: float) -> None:
        path = "/".join(self._stack)
        self._stack.pop()
        stats = self.span_stats.get(path)
        if stats is None:
            stats = self.span_stats[path] = SpanStats()
        stats.calls += 1
        stats.seconds += elapsed

    @property
    def current_path(self) -> str:
        """The slash-joined path of the innermost open span ('' at top)."""
        return "/".join(self._stack)

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """A JSON-serialisable dump of everything recorded so far."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "spans": {
                path: {"calls": stats.calls, "seconds": stats.seconds}
                for path, stats in self.span_stats.items()
            },
        }

    @staticmethod
    def from_snapshot(data: dict) -> "Recorder":
        """Rebuild a recorder from :meth:`snapshot` output (round-trip)."""
        recorder = Recorder()
        recorder.counters = {
            str(k): float(v) for k, v in data.get("counters", {}).items()
        }
        recorder.gauges = {
            str(k): float(v) for k, v in data.get("gauges", {}).items()
        }
        for path, stats in data.get("spans", {}).items():
            recorder.span_stats[str(path)] = SpanStats(
                calls=int(stats["calls"]), seconds=float(stats["seconds"])
            )
        return recorder


_ACTIVE: ContextVar[NullRecorder | Recorder] = ContextVar(
    "repro_obs_recorder", default=NULL_RECORDER
)


def get_recorder() -> NullRecorder | Recorder:
    """The active recorder (the shared no-op unless tracing is on)."""
    return _ACTIVE.get()


@contextmanager
def recording(recorder: Recorder | None = None):
    """Install ``recorder`` (or a fresh one) as the active recorder."""
    recorder = recorder if recorder is not None else Recorder()
    token = _ACTIVE.set(recorder)
    try:
        yield recorder
    finally:
        _ACTIVE.reset(token)
