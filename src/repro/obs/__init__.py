"""Zero-dependency solver telemetry: counters, gauges, nested phase spans.

Default-off: :func:`get_recorder` returns a shared no-op recorder until a
real one is installed with :func:`recording`, so instrumented hot paths
cost one attribute lookup when tracing is disabled.  See
``docs/observability.md`` for the API guide and the exported JSON schema.
"""

from repro.obs.export import render_text, to_json, write_json
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    SpanStats,
    get_recorder,
    recording,
)

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "SpanStats",
    "get_recorder",
    "recording",
    "render_text",
    "to_json",
    "write_json",
]
