"""Exporters: render a recorder as a per-phase text table or JSON.

The text form is what ``repro-gepc --trace`` prints to stderr; the JSON
form (``--trace-json`` and ``bench/report.py``) is the machine-readable
schema CI diffs against a committed baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.recorder import Recorder


def render_text(recorder: Recorder, title: str = "Trace") -> str:
    """Per-phase timing table plus counter and gauge dumps."""
    # Imported here, not at module level: repro.obs sits below repro.bench
    # (the harness records into it), so the reverse edge must stay lazy.
    from repro.bench.tables import format_table

    sections: list[str] = []
    ordered = sorted(
        recorder.span_stats.items(), key=lambda item: item[0].split("/")
    )
    span_rows = [
        [
            _indent(path),
            stats.calls,
            stats.seconds,
            stats.seconds / stats.calls if stats.calls else 0.0,
        ]
        for path, stats in ordered
    ]
    sections.append(
        format_table(
            f"{title}: phases",
            ["phase", "calls", "total (s)", "mean (s)"],
            span_rows,
        )
    )
    if recorder.counters:
        sections.append(
            format_table(
                f"{title}: counters",
                ["counter", "value"],
                [[name, value] for name, value in sorted(recorder.counters.items())],
            )
        )
    if recorder.gauges:
        sections.append(
            format_table(
                f"{title}: gauges",
                ["gauge", "value"],
                [[name, value] for name, value in sorted(recorder.gauges.items())],
            )
        )
    return "\n\n".join(sections)


def to_json(recorder: Recorder, indent: int | None = 2) -> str:
    """The recorder snapshot as a JSON document."""
    return json.dumps(recorder.snapshot(), indent=indent, sort_keys=True)


def write_json(recorder: Recorder, path: str | Path) -> Path:
    """Write :func:`to_json` to ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_json(recorder) + "\n")
    return path


def _indent(path: str) -> str:
    """Show nesting depth of a slash path as leading indentation."""
    depth = path.count("/")
    return "  " * depth + path.rsplit("/", 1)[-1] if depth else path
