"""A from-scratch two-phase dense primal simplex solver.

This is the "built, not bought" LP backend behind the GAP-based GEPC
algorithm.  It implements the textbook tableau method:

1. rewrite the LP into standard equality form (slacks for ``<=`` rows and for
   finite variable upper bounds),
2. phase 1: minimise the sum of artificial variables to find a basic feasible
   point (infeasible if the phase-1 optimum is positive),
3. phase 2: minimise the true objective from that basis.

Bland's anti-cycling rule keeps termination guaranteed; dense numpy row
operations keep moderate instances (a few hundred variables) fast enough for
tests and the reduced-scale benchmarks.  Larger instances should use the
scipy backend selected by :func:`repro.lp.solve.solve_lp`.
"""

from __future__ import annotations

import numpy as np

from repro.lp.model import LinearProgram, LPSolution, LPStatus

_TOL = 1e-9
_MAX_ITERATIONS_FACTOR = 50


class SimplexError(RuntimeError):
    """Raised when the simplex fails to converge (iteration cap exceeded)."""


def simplex_solve(program: LinearProgram) -> LPSolution:
    """Solve ``program`` with the two-phase primal simplex method."""
    c, a_ub, b_ub, a_eq, b_eq, upper = program.dense()
    n = c.size

    # Finite upper bounds become ordinary <= rows.
    bound_rows = []
    bound_rhs = []
    for j in range(n):
        if np.isfinite(upper[j]):
            row = np.zeros(n)
            row[j] = 1.0
            bound_rows.append(row)
            bound_rhs.append(upper[j])
    if bound_rows:
        a_ub = np.vstack([a_ub, np.array(bound_rows)]) if a_ub.size else np.array(bound_rows)
        b_ub = np.concatenate([b_ub, np.array(bound_rhs)])

    n_ub = a_ub.shape[0] if a_ub.size else 0
    n_eq = a_eq.shape[0] if a_eq.size else 0
    m = n_ub + n_eq
    if m == 0:
        # No constraints: optimum is 0 for non-negative costs, unbounded below
        # for any negative cost on an unbounded variable.
        if np.any(c < -_TOL):
            return LPSolution(LPStatus.UNBOUNDED)
        return LPSolution(LPStatus.OPTIMAL, np.zeros(n), 0.0)

    # Standard form: A x + slacks = b.
    total = n + n_ub
    a = np.zeros((m, total))
    b = np.zeros(m)
    if n_ub:
        a[:n_ub, :n] = a_ub
        a[:n_ub, n : n + n_ub] = np.eye(n_ub)
        b[:n_ub] = b_ub
    if n_eq:
        a[n_ub:, :n] = a_eq
        b[n_ub:] = b_eq

    # Make RHS non-negative so artificials give an identity basis.
    negative = b < 0
    a[negative] *= -1.0
    b[negative] *= -1.0

    # Phase 1 tableau with one artificial per row.
    tableau = np.zeros((m, total + m))
    tableau[:, :total] = a
    tableau[:, total:] = np.eye(m)
    basis = list(range(total, total + m))
    rhs = b.copy()

    phase1_cost = np.zeros(total + m)
    phase1_cost[total:] = 1.0
    status = _run_simplex(tableau, rhs, basis, phase1_cost)
    if status is LPStatus.UNBOUNDED:  # pragma: no cover - phase 1 is bounded
        raise SimplexError("phase 1 reported unbounded")
    phase1_value = phase1_cost[basis] @ rhs
    if phase1_value > 1e-7:
        return LPSolution(LPStatus.INFEASIBLE)

    # Drive any artificial still in the basis out (or drop a redundant row).
    keep_rows = _evict_artificials(tableau, rhs, basis, total)
    tableau = tableau[keep_rows, :total]
    rhs = rhs[keep_rows]
    basis = [basis[i] for i in range(len(basis)) if keep_rows[i]]

    # Phase 2 on the true objective.
    phase2_cost = np.zeros(total)
    phase2_cost[:n] = c
    status = _run_simplex(tableau, rhs, basis, phase2_cost)
    if status is LPStatus.UNBOUNDED:
        return LPSolution(LPStatus.UNBOUNDED)

    x = np.zeros(total)
    for row, variable in enumerate(basis):
        x[variable] = rhs[row]
    solution = x[:n]
    return LPSolution(LPStatus.OPTIMAL, solution, float(c @ solution))


def _run_simplex(
    tableau: np.ndarray,
    rhs: np.ndarray,
    basis: list[int],
    cost: np.ndarray,
) -> LPStatus:
    """Iterate pivots in place until optimal or unbounded (Bland's rule)."""
    m, total = tableau.shape
    max_iterations = _MAX_ITERATIONS_FACTOR * (total + m + 10)
    for _ in range(max_iterations):
        # Reduced costs relative to the current basis.
        y = cost[basis] @ tableau
        reduced = cost[:total] - y
        reduced[basis] = 0.0
        entering = -1
        for j in range(total):
            if reduced[j] < -_TOL:
                entering = j  # Bland: smallest index
                break
        if entering < 0:
            return LPStatus.OPTIMAL

        column = tableau[:, entering]
        leaving = -1
        best_ratio = np.inf
        for i in range(m):
            if column[i] > _TOL:
                ratio = rhs[i] / column[i]
                if ratio < best_ratio - _TOL or (
                    abs(ratio - best_ratio) <= _TOL
                    and (leaving < 0 or basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            return LPStatus.UNBOUNDED

        _pivot(tableau, rhs, leaving, entering)
        basis[leaving] = entering
    raise SimplexError("simplex iteration cap exceeded (cycling?)")


def _pivot(
    tableau: np.ndarray, rhs: np.ndarray, row: int, col: int
) -> None:
    """Gauss-Jordan pivot on ``(row, col)`` in place."""
    pivot_value = tableau[row, col]
    tableau[row] /= pivot_value
    rhs[row] /= pivot_value
    for i in range(tableau.shape[0]):
        if i != row and abs(tableau[i, col]) > 0:
            factor = tableau[i, col]
            tableau[i] -= factor * tableau[row]
            rhs[i] -= factor * rhs[row]


def _evict_artificials(
    tableau: np.ndarray,
    rhs: np.ndarray,
    basis: list[int],
    total: int,
) -> np.ndarray:
    """Pivot basic artificials out after phase 1.

    Returns a boolean mask of rows to keep (a row whose artificial cannot be
    replaced is redundant and dropped).
    """
    keep = np.ones(len(basis), dtype=bool)
    for i, variable in enumerate(basis):
        if variable < total:
            continue
        pivot_col = -1
        for j in range(total):
            if abs(tableau[i, j]) > _TOL:
                pivot_col = j
                break
        if pivot_col < 0:
            keep[i] = False  # redundant constraint
            continue
        _pivot(tableau, rhs, i, pivot_col)
        basis[i] = pivot_col
    return keep
