"""Backend dispatch for linear programs.

Two interchangeable backends solve the same :class:`LinearProgram`:

* ``"simplex"`` — the from-scratch solver in :mod:`repro.lp.simplex`
  (reference implementation, used by default on small programs),
* ``"scipy"`` — ``scipy.optimize.linprog`` with the HiGHS method
  (used by default on large programs, where a dense Python tableau would be
  too slow).

Tests cross-validate both backends on random programs.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.lp.model import LinearProgram, LPSolution, LPStatus
from repro.lp.simplex import simplex_solve

#: Programs with at most this many variables use the from-scratch simplex
#: when backend="auto".
AUTO_SIMPLEX_LIMIT = 160


def solve_lp(program: LinearProgram, backend: str = "auto") -> LPSolution:
    """Solve ``program`` with the requested backend.

    Parameters
    ----------
    program:
        The LP to solve (minimisation).
    backend:
        ``"simplex"``, ``"scipy"``, or ``"auto"`` (pick by size).
    """
    if backend == "auto":
        backend = (
            "simplex" if program.n_variables <= AUTO_SIMPLEX_LIMIT else "scipy"
        )
    if backend == "simplex":
        return simplex_solve(program)
    if backend == "scipy":
        return _scipy_solve(program)
    raise ValueError(f"unknown LP backend {backend!r}")


def _scipy_solve(program: LinearProgram) -> LPSolution:
    c, a_ub, b_ub, a_eq, b_eq, upper = program.sparse()
    bounds = [(0.0, u if np.isfinite(u) else None) for u in upper]
    result = optimize.linprog(
        c,
        A_ub=a_ub if a_ub.shape[0] else None,
        b_ub=b_ub if b_ub.size else None,
        A_eq=a_eq if a_eq.shape[0] else None,
        b_eq=b_eq if b_eq.size else None,
        bounds=bounds,
        method="highs",
    )
    if result.status == 2:
        return LPSolution(LPStatus.INFEASIBLE)
    if result.status == 3:
        return LPSolution(LPStatus.UNBOUNDED)
    if not result.success:  # pragma: no cover - defensive
        raise RuntimeError(f"scipy linprog failed: {result.message}")
    return LPSolution(LPStatus.OPTIMAL, np.asarray(result.x), float(result.fun))
