"""Linear-programming substrate.

The GAP-based GEPC algorithm needs the LP relaxation of a Generalized
Assignment Problem (Shmoys & Tardos 1993, via Plotkin-Shmoys-Tardos
relaxation).  This package provides a small LP toolkit:

* :mod:`repro.lp.model` — a builder for LPs in inequality/equality form,
* :mod:`repro.lp.simplex` — a from-scratch two-phase dense primal simplex,
* :mod:`repro.lp.solve` — backend dispatch between the simplex and
  ``scipy.optimize.linprog`` (both validated against each other in tests).
"""

from repro.lp.model import LinearProgram, LPStatus, LPSolution
from repro.lp.simplex import SimplexError, simplex_solve
from repro.lp.solve import solve_lp

__all__ = [
    "LinearProgram",
    "LPSolution",
    "LPStatus",
    "SimplexError",
    "simplex_solve",
    "solve_lp",
]
