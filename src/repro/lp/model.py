"""LP model container shared by the simplex and scipy backends.

An :class:`LinearProgram` is a minimisation problem

    minimise    c . x
    subject to  A_ub x <= b_ub
                A_eq x == b_eq
                0 <= x <= upper

All planning LPs in this repository (the GAP relaxation in particular) fit
this shape: non-negative variables with optional individual upper bounds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class LPStatus(enum.Enum):
    """Solver outcome."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass
class LPSolution:
    """Result of solving a :class:`LinearProgram`.

    ``x`` and ``objective`` are meaningful only when ``status`` is OPTIMAL.
    """

    status: LPStatus
    x: np.ndarray | None = None
    objective: float | None = None

    @property
    def is_optimal(self) -> bool:
        return self.status is LPStatus.OPTIMAL


@dataclass
class LinearProgram:
    """A minimisation LP under construction.

    Use :meth:`add_variable` to declare variables, then
    :meth:`add_le_constraint` / :meth:`add_eq_constraint` with sparse
    ``(index, coefficient)`` rows.
    """

    _costs: list[float] = field(default_factory=list)
    _uppers: list[float] = field(default_factory=list)
    _ub_rows: list[list[tuple[int, float]]] = field(default_factory=list)
    _ub_rhs: list[float] = field(default_factory=list)
    _eq_rows: list[list[tuple[int, float]]] = field(default_factory=list)
    _eq_rhs: list[float] = field(default_factory=list)

    @property
    def n_variables(self) -> int:
        return len(self._costs)

    @property
    def n_constraints(self) -> int:
        return len(self._ub_rows) + len(self._eq_rows)

    def add_variable(self, cost: float, upper: float = np.inf) -> int:
        """Declare a variable ``0 <= x <= upper`` with objective weight ``cost``.

        Returns the variable's index.
        """
        if upper < 0:
            raise ValueError(f"variable upper bound must be >= 0, got {upper}")
        self._costs.append(float(cost))
        self._uppers.append(float(upper))
        return len(self._costs) - 1

    def add_le_constraint(
        self, row: list[tuple[int, float]], rhs: float
    ) -> None:
        """Add ``sum coeff * x_index <= rhs``."""
        self._check_row(row)
        self._ub_rows.append(list(row))
        self._ub_rhs.append(float(rhs))

    def add_eq_constraint(
        self, row: list[tuple[int, float]], rhs: float
    ) -> None:
        """Add ``sum coeff * x_index == rhs``."""
        self._check_row(row)
        self._eq_rows.append(list(row))
        self._eq_rhs.append(float(rhs))

    def _check_row(self, row: list[tuple[int, float]]) -> None:
        for index, _ in row:
            if not 0 <= index < self.n_variables:
                raise IndexError(f"unknown variable index {index}")

    def sparse(self):
        """Sparse ``(c, A_ub, b_ub, A_eq, b_eq, upper)`` with CSR matrices.

        The GAP relaxation has O(n m) variables but only O(n + m)
        constraints with O(n m) total non-zeros; a dense constraint matrix
        would be O((n + m) * n m) — gigabytes at the paper's Vancouver
        scale — so the scipy backend consumes this form.
        """
        from scipy import sparse as sp

        n = self.n_variables
        c = np.array(self._costs, dtype=float)
        upper = np.array(self._uppers, dtype=float)

        def build(rows):
            data, row_idx, col_idx = [], [], []
            for i, row in enumerate(rows):
                for index, coeff in row:
                    row_idx.append(i)
                    col_idx.append(index)
                    data.append(coeff)
            return sp.csr_matrix(
                (data, (row_idx, col_idx)), shape=(len(rows), n)
            )

        return (
            c,
            build(self._ub_rows),
            np.array(self._ub_rhs, dtype=float),
            build(self._eq_rows),
            np.array(self._eq_rhs, dtype=float),
            upper,
        )

    def dense(self) -> tuple[np.ndarray, ...]:
        """Dense ``(c, A_ub, b_ub, A_eq, b_eq, upper)`` arrays."""
        n = self.n_variables
        c = np.array(self._costs, dtype=float)
        upper = np.array(self._uppers, dtype=float)

        a_ub = np.zeros((len(self._ub_rows), n))
        for i, row in enumerate(self._ub_rows):
            for index, coeff in row:
                a_ub[i, index] += coeff
        b_ub = np.array(self._ub_rhs, dtype=float)

        a_eq = np.zeros((len(self._eq_rows), n))
        for i, row in enumerate(self._eq_rows):
            for index, coeff in row:
                a_eq[i, index] += coeff
        b_eq = np.array(self._eq_rhs, dtype=float)

        return c, a_ub, b_ub, a_eq, b_eq, upper
